package kbase

import (
	"fmt"
	"sync"
)

// Lazy secondary hash indexes and the tiny planner that routes each
// filtered read to the cheapest access path:
//
//	index → zone-map scan → full scan
//
// An index maps fnv64(rendered column value) → ascending row
// positions. Columns become index candidates ("hot") either
// explicitly via Table.EnsureIndex or automatically once a column has
// been filtered on autoIndexAfter times; the index itself is built on
// the first filtered read after that, and only while the table is at
// most maxIndexedRows long (the postings map costs ~16 bytes/row).
// Every mutation (Insert, Delete, DeleteWhere) drops built indexes —
// positions shift on deletes and appends would leave the postings
// stale — while keeping the hot marks, so the next filtered read
// rebuilds. Planner state lives behind its own mutex because filtered
// reads arrive concurrently from lock-free StoreView readers.
//
// Plans never change results: the index path visits candidate
// positions in ascending (= insertion) order and verifies every row
// against the full compiled conjunction (hash collisions and the
// other predicates), so it emits exactly the rows a scan would, in
// the same order. The scan path delegates to the backend, where the
// disk engine prunes pages through zone maps.
const autoIndexAfter = 2

// maxIndexedRows caps index builds; a var so tests can lower it.
var maxIndexedRows = 1 << 20

// colIndex is one built column index.
type colIndex struct {
	postings map[uint64][]int // fnv64(rendered value) -> ascending positions
}

// planner is a table's query-planning state.
type planner struct {
	mu   sync.Mutex
	auto bool              // heat-based hot marking enabled
	heat map[int]int       // filtered-read count per column
	hot  map[int]bool      // columns to index on next filtered read
	idx  map[int]*colIndex // built indexes

	indexHits, fullScans int64
}

func newPlanner() *planner {
	return &planner{auto: true, heat: map[int]int{}, hot: map[int]bool{}, idx: map[int]*colIndex{}}
}

// invalidate drops built indexes (hot marks and heat survive, so the
// next filtered read rebuilds). Called on every mutation.
func (p *planner) invalidate() {
	p.mu.Lock()
	for c := range p.idx {
		delete(p.idx, c)
	}
	p.mu.Unlock()
}

// EnsureIndex marks the named column as hot: its hash index is built
// on the next filtered read touching it (and rebuilt after mutations).
func (t *Table) EnsureIndex(col string) error {
	c := t.schema.ColIndex(col)
	if c < 0 {
		return fmt.Errorf("kbase: %s has no column %q", t.schema.Name, col)
	}
	t.plan.mu.Lock()
	t.plan.hot[c] = true
	t.plan.mu.Unlock()
	return nil
}

// SetAutoIndex toggles heat-based index selection (on by default):
// when enabled, a column filtered on autoIndexAfter times is marked
// hot automatically.
func (t *Table) SetAutoIndex(on bool) {
	t.plan.mu.Lock()
	t.plan.auto = on
	t.plan.mu.Unlock()
}

// choosePlan records the filtered read in the heat map, builds any
// newly-eligible index, and returns the index to drive the read with
// (nil → scan plan). Deterministic: the lowest-numbered predicate
// column with an index wins.
func (t *Table) choosePlan(m matcher) (*colIndex, compiledPred, bool) {
	p := t.plan
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, cp := range m.preds {
		p.heat[cp.col]++
		if p.auto && p.heat[cp.col] >= autoIndexAfter {
			p.hot[cp.col] = true
		}
	}
	for _, cp := range m.preds {
		if p.idx[cp.col] != nil {
			p.indexHits++
			return p.idx[cp.col], cp, true
		}
	}
	for _, cp := range m.preds {
		if p.hot[cp.col] && t.be.Len() <= maxIndexedRows {
			ci := buildColIndex(t.be, cp.col)
			p.idx[cp.col] = ci
			p.indexHits++
			return ci, cp, true
		}
	}
	p.fullScans++
	return nil, compiledPred{}, false
}

// buildColIndex scans the backend once, hashing one column's rendered
// values into a postings map.
func buildColIndex(be Backend, col int) *colIndex {
	ci := &colIndex{postings: make(map[uint64][]int)}
	pos := 0
	be.Scan(func(tp Tuple) bool {
		h := hashKey(renderCell(tp[col]))
		ci.postings[h] = append(ci.postings[h], pos)
		pos++
		return true
	})
	return ci
}

// ScanWhere calls fn for every tuple satisfying all predicates, in
// insertion order, until fn returns false. The tuple is borrowed,
// like Scan's. The planner may answer through a hash index or a
// (zone-map pruned) backend scan; both emit identical rows.
func (t *Table) ScanWhere(preds []Pred, fn func(Tuple) bool) {
	if len(preds) == 0 {
		t.be.Scan(fn)
		return
	}
	m := compilePreds(t.schema, preds)
	if m.impossible {
		return
	}
	if ci, cp, ok := t.choosePlan(m); ok {
		for _, pos := range ci.postings[hashKey(cp.want)] {
			tp := t.be.Get(pos)
			if m.match(tp) && !fn(tp) {
				return
			}
		}
		return
	}
	t.be.ScanWhere(preds, fn)
}

// PlanInfo describes how one filtered read was answered, for slow-
// query logging and tracing. Plan is one of "unfiltered" (no
// predicates), "impossible" (a predicate names a missing column),
// "index" (hash-index probe) or "scan" (backend scan, zone-map
// pruned on the disk engine). PagesSkipped is the read's zone-map
// pruning delta — a best-effort sample of the backend's counter
// around the read, 0 for in-memory backends.
type PlanInfo struct {
	Plan         string
	PagesSkipped int64
}

// PageWhere returns detached clones of up to limit matching tuples
// starting at the offset-th match (limit <= 0 means "to the end"),
// plus the exact total number of matches — the pushed-down form of
// the serving layer's filter-then-paginate read. Results are
// bit-identical across backends and plans; only the work differs.
func (t *Table) PageWhere(preds []Pred, offset, limit int) ([]Tuple, int) {
	out, total, _ := t.PageWhereInfo(preds, offset, limit)
	return out, total
}

// PageWhereInfo is PageWhere plus a PlanInfo describing the access
// path taken, so callers can log slow filtered reads with the plan
// that produced them.
func (t *Table) PageWhereInfo(preds []Pred, offset, limit int) ([]Tuple, int, PlanInfo) {
	if len(preds) == 0 {
		return t.be.Page(offset, limit), t.be.Len(), PlanInfo{Plan: "unfiltered"}
	}
	m := compilePreds(t.schema, preds)
	if m.impossible {
		return nil, 0, PlanInfo{Plan: "impossible"}
	}
	if ci, cp, ok := t.choosePlan(m); ok {
		if offset < 0 {
			offset = 0
		}
		var out []Tuple
		total := 0
		for _, pos := range ci.postings[hashKey(cp.want)] {
			tp := t.be.Get(pos)
			if !m.match(tp) {
				continue
			}
			if total >= offset && (limit <= 0 || len(out) < limit) {
				out = append(out, tp.Clone())
			}
			total++
		}
		return out, total, PlanInfo{Plan: "index"}
	}
	before := t.be.Stats().PagesSkipped
	out, total := t.be.PageWhere(preds, offset, limit)
	return out, total, PlanInfo{Plan: "scan", PagesSkipped: t.be.Stats().PagesSkipped - before}
}
