package kbase

import (
	"strings"
	"testing"
)

func TestTSVRoundTrip(t *testing.T) {
	s, err := NewSchema("HasCollectorCurrent", "part", "ma:int", "score:float")
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s)
	rows := []Tuple{
		{"SMBT3904", int64(200), 0.97},
		{"BC337", int64(800), 0.91},
	}
	for _, r := range rows {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	if err := tbl.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema().Name != "HasCollectorCurrent" || got.Schema().Arity() != 3 {
		t.Fatalf("schema = %+v", got.Schema())
	}
	if got.Schema().Columns[1].Type != IntCol || got.Schema().Columns[2].Type != FloatCol {
		t.Fatalf("column types = %+v", got.Schema().Columns)
	}
	if got.Len() != 2 {
		t.Fatalf("len = %d", got.Len())
	}
	for _, r := range rows {
		if !got.Contains(r) {
			t.Fatalf("missing tuple %v", r)
		}
	}
}

func TestReadTSVErrors(t *testing.T) {
	bad := []string{
		"",                            // empty
		"no-hash\tpart\n",             // missing '#'
		"#r\n",                        // no columns
		"#r\ta\tb\nx\n",               // arity mismatch
		"#r\tn:integer\nnotanumber\n", // bad int
		"#r\tf:float\nnotafloat\n",    // bad float
	}
	for _, src := range bad {
		if _, err := ReadTSV(strings.NewReader(src)); err == nil {
			t.Errorf("ReadTSV(%q) should error", src)
		}
	}
}
