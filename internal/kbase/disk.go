package kbase

import (
	"bufio"
	"container/list"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
)

// Default disk-engine geometry: rows per page and cached pages per
// table. A table's resident footprint is bounded by
// cachePages*pageRows decoded rows plus one partial tail page,
// independent of table size.
const (
	defaultPageRows   = 128
	defaultCachePages = 16
)

// DiskEngine creates disk-paged backends that keep their row pages
// under one spill directory. The spill is a paging area, not a
// persistence format — durable snapshots remain SaveDB's TSV
// directories — so files carry no crash-consistency machinery and the
// whole directory is removed on Close.
type DiskEngine struct {
	dir        string
	pageRows   int
	cachePages int
	owned      bool // engine created dir and removes it on Close

	mu  sync.Mutex
	seq int // per-table subdirectory counter
}

// NewDiskEngine creates a disk engine spilling under dir (a fresh
// os.MkdirTemp directory when dir is empty, removed on Close).
// pageRows and cachePages override the default page geometry when
// positive.
func NewDiskEngine(dir string, pageRows, cachePages int) (*DiskEngine, error) {
	owned := false
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "kbase-spill-")
		if err != nil {
			return nil, fmt.Errorf("kbase: creating spill directory: %w", err)
		}
		owned = true
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if pageRows <= 0 {
		pageRows = defaultPageRows
	}
	if cachePages <= 0 {
		cachePages = defaultCachePages
	}
	return &DiskEngine{dir: dir, pageRows: pageRows, cachePages: cachePages, owned: owned}, nil
}

// Kind returns "disk".
func (e *DiskEngine) Kind() string { return "disk" }

// Dir returns the engine's spill directory.
func (e *DiskEngine) Dir() string { return e.dir }

// NewBackend creates an empty disk-paged backend for one table, in
// its own subdirectory of the spill.
func (e *DiskEngine) NewBackend(schema Schema) (Backend, error) {
	e.mu.Lock()
	e.seq++
	name := fmt.Sprintf("t%04d", e.seq)
	e.mu.Unlock()
	if safeTableFile(schema.Name) {
		name += "-" + schema.Name
	}
	dir := filepath.Join(e.dir, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	b := &diskBackend{
		schema:     schema,
		dir:        dir,
		pageRows:   e.pageRows,
		cachePages: e.cachePages,
		cached:     map[int]*list.Element{},
		lru:        list.New(),
	}
	// GC backstop for sessions dropped without Close: the backend is
	// reachable from the stack during every operation on it, so the
	// finalizer can only fire once no reader or writer can ever touch
	// the page files again. (A finalizer higher up — on the table, DB
	// or store — would be unsafe: those can become unreachable while a
	// method still scans this backend.) Explicit Close remains the
	// deterministic cleanup path.
	runtime.SetFinalizer(b, func(fb *diskBackend) { fb.Close() })
	return b, nil
}

// Close removes the spill directory when the engine created it.
func (e *DiskEngine) Close() error {
	if e.owned {
		return os.RemoveAll(e.dir)
	}
	return nil
}

// diskBackend stores one table's rows as fixed-size pages of escaped
// TSV lines on disk — the same row encoding WriteTSV emits, so
// snapshotting is a straight byte copy of the page files. The tail
// (the rows beyond the last full page) stays in memory until it fills
// a page; reads go through a small LRU cache of decoded pages.
//
// The backend is internally locked: the LRU cache mutates on every
// read, so concurrent readers (and the writer) serialize on mu. The
// serving layer never reads store tables concurrently — published
// StoreViews carry their own in-memory state — so the lock is a
// safety net, not a hot path.
//
// I/O errors on reads and deletes panic with context: the spill files
// are process-private transient state, and losing them mid-session is
// unrecoverable in exactly the way losing the process's heap would be.
// Append returns errors normally (Table.Insert propagates them).
type diskBackend struct {
	mu         sync.Mutex
	schema     Schema
	dir        string
	pageRows   int
	cachePages int

	n     int     // total rows
	pages int     // full pages on disk
	tail  []Tuple // rows past the last full page

	// zones holds one pageZone per full page, built when the page is
	// flushed (and rebuilt wholesale on DeleteWhere rewrites). Each
	// element is immutable once appended, so filtered reads may probe
	// a length-snapshot of the slice without holding mu. Sidecar
	// files (pNNNNNNNN.zm) persist the same data next to each page.
	zones []pageZone

	cached map[int]*list.Element // page -> lru element
	lru    *list.List            // front = most recent
	hits   int64
	misses int64
	// skipped counts pages pruned by zone maps; atomic because the
	// pruning happens outside mu (mirroring Scan's unlocked callback
	// convention).
	skipped atomic.Int64
}

// cachedPage is one decoded page in the LRU.
type cachedPage struct {
	page int
	rows []Tuple
}

func (b *diskBackend) Kind() string { return "disk" }

func (b *diskBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *diskBackend) pagePath(p int) string {
	return filepath.Join(b.dir, fmt.Sprintf("p%08d.tsv", p))
}

func (b *diskBackend) zonePath(p int) string {
	return filepath.Join(b.dir, fmt.Sprintf("p%08d.zm", p))
}

// writePage encodes rows into the page file at p.
func (b *diskBackend) writePage(p int, rows []Tuple) error {
	return writePageFile(b.pagePath(p), rows)
}

// writePageFile encodes rows into one page file.
func writePageFile(path string, rows []Tuple) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, tp := range rows {
		if _, err := w.WriteString(encodeTupleTSV(tp) + "\n"); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readPage decodes the page file at p (no cache involvement).
func (b *diskBackend) readPage(p int) ([]Tuple, error) {
	body, err := os.ReadFile(b.pagePath(p))
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	rows := make([]Tuple, 0, len(lines))
	for _, line := range lines {
		parts, err := splitTSV(line)
		if err != nil {
			return nil, fmt.Errorf("kbase: page %s: %w", b.pagePath(p), err)
		}
		tp, err := parseTupleFields(b.schema, parts)
		if err != nil {
			return nil, fmt.Errorf("kbase: page %s: %w", b.pagePath(p), err)
		}
		rows = append(rows, tp)
	}
	return rows, nil
}

// load returns page p's decoded rows through the LRU cache. Caller
// holds mu.
func (b *diskBackend) load(p int) []Tuple {
	if el, ok := b.cached[p]; ok {
		b.hits++
		b.lru.MoveToFront(el)
		return el.Value.(*cachedPage).rows
	}
	b.misses++
	rows, err := b.readPage(p)
	if err != nil {
		panic(fmt.Sprintf("kbase: disk backend for %s lost page %d: %v", b.schema.Name, p, err))
	}
	b.cached[p] = b.lru.PushFront(&cachedPage{page: p, rows: rows})
	for b.lru.Len() > b.cachePages {
		old := b.lru.Back()
		b.lru.Remove(old)
		delete(b.cached, old.Value.(*cachedPage).page)
	}
	return rows
}

// invalidate drops the whole page cache. Caller holds mu.
func (b *diskBackend) invalidate() {
	b.cached = map[int]*list.Element{}
	b.lru.Init()
}

func (b *diskBackend) Append(tp Tuple) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tail = append(b.tail, tp)
	b.n++
	if len(b.tail) == b.pageRows {
		z := buildPageZone(b.schema, b.tail)
		if err := b.writePage(b.pages, b.tail); err != nil {
			b.tail = b.tail[:len(b.tail)-1]
			b.n--
			return fmt.Errorf("kbase: flushing page for %s: %w", b.schema.Name, err)
		}
		if err := writeZoneFile(b.zonePath(b.pages), z); err != nil {
			// Roll the whole flush back so page and sidecar stay paired.
			os.Remove(b.pagePath(b.pages))
			b.tail = b.tail[:len(b.tail)-1]
			b.n--
			return fmt.Errorf("kbase: flushing zone map for %s: %w", b.schema.Name, err)
		}
		b.zones = append(b.zones, z)
		b.pages++
		b.tail = nil
	}
	return nil
}

func (b *diskBackend) Get(i int) Tuple {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("kbase: disk backend for %s: row %d out of range [0,%d)", b.schema.Name, i, b.n))
	}
	if full := b.pages * b.pageRows; i >= full {
		return b.tail[i-full]
	}
	return b.load(i / b.pageRows)[i%b.pageRows]
}

func (b *diskBackend) Scan(fn func(Tuple) bool) {
	// Snapshot the geometry, then fetch page by page: fn runs without
	// the lock held, so a callback may call back into the table's read
	// paths (Contains during Compare) without deadlocking.
	b.mu.Lock()
	pages, tail := b.pages, b.tail
	b.mu.Unlock()
	for p := 0; p < pages; p++ {
		b.mu.Lock()
		rows := b.load(p)
		b.mu.Unlock()
		for _, tp := range rows {
			if !fn(tp) {
				return
			}
		}
	}
	for _, tp := range tail {
		if !fn(tp) {
			return
		}
	}
}

func (b *diskBackend) Page(offset, limit int) []Tuple {
	b.mu.Lock()
	defer b.mu.Unlock()
	lo, hi := clipPage(b.n, offset, limit)
	if lo >= hi {
		return nil
	}
	out := make([]Tuple, 0, hi-lo)
	full := b.pages * b.pageRows
	for i := lo; i < hi; {
		if i >= full {
			out = append(out, b.tail[i-full].Clone())
			i++
			continue
		}
		rows := b.load(i / b.pageRows)
		for k := i % b.pageRows; k < len(rows) && i < hi && i < full; k++ {
			out = append(out, rows[k].Clone())
			i++
		}
	}
	return out
}

// scanMatches drives both filtered read paths: it walks pages in
// insertion order, consults each page's zone map before loading, and
// calls fn (unlocked, same convention as Scan) for every matching
// row until fn returns false. Pruned pages are never read, decoded,
// or admitted to the LRU cache.
func (b *diskBackend) scanMatches(m matcher, fn func(Tuple) bool) {
	b.mu.Lock()
	pages, tail, zones := b.pages, b.tail, b.zones
	b.mu.Unlock()
	for p := 0; p < pages; p++ {
		if p < len(zones) && !zones[p].mayMatch(m) {
			b.skipped.Add(1)
			continue
		}
		b.mu.Lock()
		rows := b.load(p)
		b.mu.Unlock()
		for _, tp := range rows {
			if m.match(tp) && !fn(tp) {
				return
			}
		}
	}
	for _, tp := range tail {
		if m.match(tp) && !fn(tp) {
			return
		}
	}
}

func (b *diskBackend) ScanWhere(preds []Pred, fn func(Tuple) bool) {
	m := compilePreds(b.schema, preds)
	if m.impossible {
		return
	}
	b.scanMatches(m, fn)
}

func (b *diskBackend) PageWhere(preds []Pred, offset, limit int) ([]Tuple, int) {
	m := compilePreds(b.schema, preds)
	if m.impossible {
		return nil, 0
	}
	if offset < 0 {
		offset = 0
	}
	var out []Tuple
	total := 0
	b.scanMatches(m, func(tp Tuple) bool {
		// Clone only in-window matches; keep counting past the window
		// so total is exact (zone maps make the remainder cheap).
		if total >= offset && (limit <= 0 || len(out) < limit) {
			out = append(out, tp.Clone())
		}
		total++
		return true
	})
	return out, total
}

func (b *diskBackend) DeleteWhere(pred func(Tuple) bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Stream the survivors into a fresh page sequence, one page buffer
	// in memory at a time, then swap: the delete never materializes
	// the table.
	tmp := b.dir + ".rewrite"
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		panic(fmt.Sprintf("kbase: disk backend for %s: delete rewrite: %v", b.schema.Name, err))
	}
	old := struct {
		dir   string
		pages int
		tail  []Tuple
	}{b.dir, b.pages, b.tail}
	kept := make([]Tuple, 0, b.pageRows)
	newPages, keptN, deleted := 0, 0, 0
	var newZones []pageZone
	flush := func() {
		if err := writePageFile(filepath.Join(tmp, fmt.Sprintf("p%08d.tsv", newPages)), kept); err != nil {
			panic(fmt.Sprintf("kbase: disk backend for %s: delete rewrite: %v", b.schema.Name, err))
		}
		z := buildPageZone(b.schema, kept)
		if err := writeZoneFile(filepath.Join(tmp, fmt.Sprintf("p%08d.zm", newPages)), z); err != nil {
			panic(fmt.Sprintf("kbase: disk backend for %s: delete rewrite: %v", b.schema.Name, err))
		}
		newZones = append(newZones, z)
		newPages++
		kept = kept[:0]
	}
	consider := func(tp Tuple) {
		if pred(tp) {
			deleted++
			return
		}
		kept = append(kept, tp)
		keptN++
		if len(kept) == b.pageRows {
			flush()
		}
	}
	for p := 0; p < old.pages; p++ {
		for _, tp := range b.load(p) {
			consider(tp)
		}
	}
	for _, tp := range old.tail {
		consider(tp)
	}
	if deleted == 0 {
		os.RemoveAll(tmp)
		return 0
	}
	if err := os.RemoveAll(old.dir); err != nil {
		panic(fmt.Sprintf("kbase: disk backend for %s: delete swap: %v", b.schema.Name, err))
	}
	if err := os.Rename(tmp, old.dir); err != nil {
		panic(fmt.Sprintf("kbase: disk backend for %s: delete swap: %v", b.schema.Name, err))
	}
	b.pages = newPages
	b.zones = newZones
	b.tail = append([]Tuple(nil), kept...)
	b.n = keptN
	b.invalidate()
	return deleted
}

func (b *diskBackend) Snapshot(w io.Writer) error {
	// Page files hold exactly the WriteTSV row encoding, so the
	// snapshot body is a byte-for-byte concatenation of the pages plus
	// the encoded tail — identical to the in-memory backend's output
	// for the same rows.
	b.mu.Lock()
	pages, tail := b.pages, append([]Tuple(nil), b.tail...)
	b.mu.Unlock()
	for p := 0; p < pages; p++ {
		f, err := os.Open(b.pagePath(p))
		if err != nil {
			return err
		}
		_, err = io.Copy(w, f)
		f.Close()
		if err != nil {
			return err
		}
	}
	for _, tp := range tail {
		if _, err := io.WriteString(w, encodeTupleTSV(tp)+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func (b *diskBackend) Stats() BackendStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStats{
		Pages:        b.pages,
		CacheHits:    b.hits,
		CacheMisses:  b.misses,
		PagesSkipped: b.skipped.Load(),
	}
}

// pageZones returns the backend's current zone maps (immutable per
// element). SaveDB uses it to emit derived `<table>.zm` sidecars.
func (b *diskBackend) pageZones() []pageZone {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.zones
}

func (b *diskBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.invalidate()
	b.tail, b.n, b.pages, b.zones = nil, 0, 0, nil
	return os.RemoveAll(b.dir)
}
