package kbase

import (
	"bytes"
	"fmt"
	"math"
	"path/filepath"
	"testing"
)

// forEachBackend runs the same test body against every storage
// engine, so Table semantics (set membership, insertion order,
// pagination, deletion, snapshots) are proven identical across the
// in-memory, disk-paged and columnar backends. The paged engines use
// a tiny page size so a handful of rows already spans several pages
// and a partial tail.
func forEachBackend(t *testing.T, fn func(t *testing.T, engine Engine)) {
	t.Helper()
	t.Run("memory", func(t *testing.T) { fn(t, MemoryEngine{}) })
	t.Run("disk", func(t *testing.T) {
		engine, err := NewDiskEngine(filepath.Join(t.TempDir(), "spill"), 4, 2)
		if err != nil {
			t.Fatal(err)
		}
		defer engine.Close()
		fn(t, engine)
	})
	t.Run("columnar", func(t *testing.T) {
		engine := NewColumnarEngine(4, 2)
		defer engine.Close()
		fn(t, engine)
	})
}

// newBackedTable creates one table through the engine (via a DB, the
// production construction path).
func newBackedTable(t *testing.T, engine Engine, schema Schema) *Table {
	t.Helper()
	be, err := engine.NewBackend(schema)
	if err != nil {
		t.Fatal(err)
	}
	return newTableWith(schema, be)
}

// fillParts inserts n rows ("p<i>", i) in order.
func fillParts(t *testing.T, tbl *Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		added, err := tbl.Insert(Tuple{fmt.Sprintf("p%02d", i), i})
		if err != nil || !added {
			t.Fatalf("insert %d: added=%v err=%v", i, added, err)
		}
	}
}

func partsOf(rows []Tuple) []string {
	out := make([]string, len(rows))
	for i, tp := range rows {
		out[i] = tp[0].(string)
	}
	return out
}

func TestBackendSetSemantics(t *testing.T) {
	forEachBackend(t, func(t *testing.T, engine Engine) {
		tbl := newBackedTable(t, engine, mustSchema(t, "r", "part", "n:integer"))
		fillParts(t, tbl, 10)
		if tbl.Len() != 10 {
			t.Fatalf("len = %d", tbl.Len())
		}
		// Duplicates (with int normalization) are no-ops.
		if added, err := tbl.Insert(Tuple{"p03", int64(3)}); err != nil || added {
			t.Fatalf("dup insert: added=%v err=%v", added, err)
		}
		for i := 0; i < 10; i++ {
			if !tbl.Contains(Tuple{fmt.Sprintf("p%02d", i), i}) {
				t.Fatalf("Contains(p%02d) = false", i)
			}
		}
		if tbl.Contains(Tuple{"p99", 99}) || tbl.Contains(Tuple{"p01"}) {
			t.Fatal("phantom membership")
		}
		// Exact-tuple delete re-packs and keeps the rest queryable.
		if !tbl.Delete(Tuple{"p04", 4}) {
			t.Fatal("Delete(p04) = false")
		}
		if tbl.Delete(Tuple{"p04", 4}) {
			t.Fatal("second Delete(p04) must be false")
		}
		if tbl.Len() != 9 || tbl.Contains(Tuple{"p04", 4}) {
			t.Fatalf("post-delete len=%d contains=%v", tbl.Len(), tbl.Contains(Tuple{"p04", 4}))
		}
		want := []string{"p00", "p01", "p02", "p03", "p05", "p06", "p07", "p08", "p09"}
		got := partsOf(tbl.Tuples())
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order after delete: got %v", got)
			}
		}
		// The deleted tuple can be re-inserted (index rebuilt correctly).
		if added, err := tbl.Insert(Tuple{"p04", 4}); err != nil || !added {
			t.Fatalf("re-insert after delete: added=%v err=%v", added, err)
		}
	})
}

func TestBackendPageEdgeCases(t *testing.T) {
	forEachBackend(t, func(t *testing.T, engine Engine) {
		tbl := newBackedTable(t, engine, mustSchema(t, "r", "part", "n:integer"))

		// Empty table: every window is empty.
		if got := tbl.Page(0, 0); got != nil {
			t.Fatalf("empty Page(0,0) = %v", got)
		}
		if got := tbl.Page(3, 5); got != nil {
			t.Fatalf("empty Page(3,5) = %v", got)
		}

		fillParts(t, tbl, 10) // spans 2 full disk pages + tail at pageRows=4
		cases := []struct {
			offset, limit int
			want          []string
		}{
			{0, 3, []string{"p00", "p01", "p02"}},
			{3, 4, []string{"p03", "p04", "p05", "p06"}},    // crosses a page boundary
			{8, 0, []string{"p08", "p09"}},                  // limit 0 = to the end
			{8, -1, []string{"p08", "p09"}},                 // negative limit = to the end
			{9, 5, []string{"p09"}},                         // window clipped at the end
			{10, 1, nil},                                    // offset == len
			{99, 2, nil},                                    // offset past the end
			{-2, 2, []string{"p00", "p01"}},                 // negative offset clamps to 0
			{7, math.MaxInt, []string{"p07", "p08", "p09"}}, // huge limit must not overflow
			{0, 0, []string{"p00", "p01", "p02", "p03", "p04", "p05", "p06", "p07", "p08", "p09"}},
		}
		for _, c := range cases {
			got := partsOf(tbl.Page(c.offset, c.limit))
			if len(got) != len(c.want) {
				t.Fatalf("Page(%d,%d) = %v, want %v", c.offset, c.limit, got, c.want)
			}
			for i := range c.want {
				if got[i] != c.want[i] {
					t.Fatalf("Page(%d,%d) = %v, want %v", c.offset, c.limit, got, c.want)
				}
			}
		}
		// Pages are detached: mutating a served row never corrupts the
		// table.
		page := tbl.Page(0, 2)
		page[0][0] = "corrupted"
		if tbl.Tuples()[0][0] != "p00" || !tbl.Contains(Tuple{"p00", 0}) {
			t.Fatal("Page aliased table storage")
		}
	})
}

func TestBackendDeleteWhereEdgeCases(t *testing.T) {
	forEachBackend(t, func(t *testing.T, engine Engine) {
		tbl := newBackedTable(t, engine, mustSchema(t, "r", "part", "n:integer"))

		// Deleting from an empty table is a no-op.
		if n := tbl.DeleteWhere(func(Tuple) bool { return true }); n != 0 {
			t.Fatalf("empty DeleteWhere = %d", n)
		}
		fillParts(t, tbl, 10)

		// A predicate matching nothing deletes nothing and keeps every
		// row addressable.
		if n := tbl.DeleteWhere(func(Tuple) bool { return false }); n != 0 {
			t.Fatalf("no-op DeleteWhere = %d", n)
		}
		if tbl.Len() != 10 || !tbl.Contains(Tuple{"p07", 7}) {
			t.Fatal("no-op DeleteWhere disturbed the table")
		}

		// Delete the odd rows: survivors keep relative order, the index
		// serves membership for survivors only, and pagination follows
		// the re-packed positions.
		n := tbl.DeleteWhere(func(tp Tuple) bool { return tp[1].(int64)%2 == 1 })
		if n != 5 || tbl.Len() != 5 {
			t.Fatalf("odd DeleteWhere: n=%d len=%d", n, tbl.Len())
		}
		want := []string{"p00", "p02", "p04", "p06", "p08"}
		got := partsOf(tbl.Tuples())
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("survivors = %v", got)
			}
		}
		if tbl.Contains(Tuple{"p01", 1}) || !tbl.Contains(Tuple{"p08", 8}) {
			t.Fatal("index out of sync after DeleteWhere")
		}
		if got := partsOf(tbl.Page(3, 2)); len(got) != 2 || got[0] != "p06" || got[1] != "p08" {
			t.Fatalf("Page after DeleteWhere = %v", got)
		}

		// Delete everything; the table stays usable.
		if n := tbl.DeleteWhere(func(Tuple) bool { return true }); n != 5 {
			t.Fatalf("delete-all = %d", n)
		}
		if tbl.Len() != 0 || tbl.Page(0, 0) != nil {
			t.Fatal("delete-all left rows behind")
		}
		if added, err := tbl.Insert(Tuple{"fresh", 0}); err != nil || !added {
			t.Fatalf("insert after delete-all: %v %v", added, err)
		}
	})
}

// TestBackendDeleteDuringSnapshot pins the snapshot-isolation shape a
// single-writer session relies on: a snapshot taken before a delete
// keeps the pre-delete rows (its bytes are already rendered), the
// delete does not disturb it, and a snapshot taken after reflects
// exactly the survivors.
func TestBackendDeleteDuringSnapshot(t *testing.T) {
	forEachBackend(t, func(t *testing.T, engine Engine) {
		tbl := newBackedTable(t, engine, mustSchema(t, "r", "part", "n:integer"))
		fillParts(t, tbl, 10)

		var before bytes.Buffer
		if err := tbl.WriteTSV(&before); err != nil {
			t.Fatal(err)
		}
		if n := tbl.DeleteWhere(func(tp Tuple) bool { return tp[1].(int64) >= 5 }); n != 5 {
			t.Fatalf("delete = %d", n)
		}
		// The pre-delete snapshot still parses to the full row set.
		restored, err := ReadTSV(bytes.NewReader(before.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if restored.Len() != 10 || !restored.Contains(Tuple{"p09", 9}) {
			t.Fatalf("pre-delete snapshot lost rows: len=%d", restored.Len())
		}
		// A fresh snapshot holds exactly the survivors.
		var after bytes.Buffer
		if err := tbl.WriteTSV(&after); err != nil {
			t.Fatal(err)
		}
		again, err := ReadTSV(bytes.NewReader(after.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if again.Len() != 5 || again.Contains(Tuple{"p05", 5}) || !again.Contains(Tuple{"p04", 4}) {
			t.Fatalf("post-delete snapshot wrong: len=%d", again.Len())
		}
	})
}

// TestBackendTSVBytesIdentical is the serialization half of the
// cross-backend equivalence invariant: the same inserts in the same
// order produce byte-identical WriteTSV output (and therefore
// byte-identical SaveDB snapshots) from both backends, including
// values that exercise the escaping.
func TestBackendTSVBytesIdentical(t *testing.T) {
	schema := mustSchema(t, "r", "part", "note", "n:integer", "score:float")
	rows := make([]Tuple, 0, 40)
	for i := 0; i < 40; i++ {
		rows = append(rows, Tuple{
			fmt.Sprintf("p%02d", i),
			fmt.Sprintf("line\nbreak\tand\\slash %d", i),
			i,
			float64(i) / 7,
		})
	}
	render := func(t *testing.T, engine Engine) []byte {
		t.Helper()
		tbl := newBackedTable(t, engine, schema)
		for _, tp := range rows {
			if _, err := tbl.Insert(tp); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := tbl.WriteTSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	mem := render(t, MemoryEngine{})
	disk, err := NewDiskEngine(filepath.Join(t.TempDir(), "spill"), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if got := render(t, disk); !bytes.Equal(mem, got) {
		t.Fatalf("WriteTSV bytes differ across backends:\nmemory: %q\ndisk:   %q", mem, got)
	}
	columnar := NewColumnarEngine(8, 2)
	defer columnar.Close()
	if got := render(t, columnar); !bytes.Equal(mem, got) {
		t.Fatalf("WriteTSV bytes differ across backends:\nmemory:   %q\ncolumnar: %q", mem, got)
	}
}

// TestDiskBackendPaging exercises the disk engine's page mechanics
// directly: rows spill to page files as they fill, reads run through
// the LRU cache (hits and misses both observed), and a table several
// pages long still scans in insertion order.
func TestDiskBackendPaging(t *testing.T) {
	engine, err := NewDiskEngine(filepath.Join(t.TempDir(), "spill"), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	tbl := newBackedTable(t, engine, mustSchema(t, "r", "part", "n:integer"))
	fillParts(t, tbl, 19) // 4 full pages + 3-row tail

	if bs := tbl.BackendStats(); bs.Pages != 4 {
		t.Fatalf("pages = %d, want 4", bs.Pages)
	}
	// Sequential scans see every row in order...
	var got []string
	tbl.Scan(func(tp Tuple) bool {
		got = append(got, tp[0].(string))
		return true
	})
	if len(got) != 19 || got[0] != "p00" || got[18] != "p18" {
		t.Fatalf("scan = %v", got)
	}
	// ...and with only 2 cached pages, scanning 4 pages twice must both
	// hit and miss the cache.
	tbl.Scan(func(Tuple) bool { return true })
	bs := tbl.BackendStats()
	if bs.CacheMisses == 0 {
		t.Fatal("expected cache misses after scanning more pages than fit")
	}
	// Repeatedly reading the same row is all hits after the first load.
	for i := 0; i < 5; i++ {
		if !tbl.Contains(Tuple{"p01", 1}) {
			t.Fatal("Contains(p01)")
		}
	}
	if after := tbl.BackendStats(); after.CacheHits <= bs.CacheHits {
		t.Fatalf("expected cache hits to grow: %+v -> %+v", bs, after)
	}
	if tbl.BackendKind() != "disk" {
		t.Fatalf("kind = %q", tbl.BackendKind())
	}
}

// TestDiskDBSaveLoadRoundTrip proves a whole database round-trips
// through SaveDB/LoadDBWith on the disk engine, and that the restored
// DB equals both the original and a memory-engine restore.
func TestDiskDBSaveLoadRoundTrip(t *testing.T) {
	engine, err := NewDiskEngine(filepath.Join(t.TempDir(), "spill"), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDBWith(engine)
	defer db.Close()
	tbl, err := db.Create(mustSchema(t, "r", "part", "n:integer"))
	if err != nil {
		t.Fatal(err)
	}
	fillParts(t, tbl, 13)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := SaveDB(db, dir); err != nil {
		t.Fatal(err)
	}

	mem, err := LoadDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	engine2, err := NewDiskEngine(filepath.Join(t.TempDir(), "spill2"), 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := LoadDBWith(dir, engine2)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if !EqualDB(db, mem) || !EqualDB(db, disk) || !EqualDB(mem, disk) {
		t.Fatal("round-tripped databases differ")
	}
	if disk.BackendKind() != "disk" || disk.Stats().Backend != "disk" {
		t.Fatalf("restored kind = %q", disk.BackendKind())
	}
}
