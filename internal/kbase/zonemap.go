package kbase

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// Zone maps summarize one disk page's rendered column values so a
// filtered read can prove "no row on this page matches" without
// reading, decoding, or caching the page. Per page and column they
// hold a lexicographic min/max over the rendered values plus — when
// the page has few enough distinct values — the complete distinct
// set, which turns the conservative range check into an exact one.
//
// All bounds are over *rendered* values (renderCell), the same domain
// predicates compare in, so the pruning is sound for every column
// type without any numeric-vs-string ordering subtleties. Oversized
// values are truncated to zoneValueCap bytes: a truncated min is
// still a valid lower bound (a prefix never sorts after the
// original), but a truncated max is not a valid upper bound, so the
// column marks maxOK=false and the upper check is skipped.
const (
	// zoneDistinctCap bounds the per-column distinct set; beyond it the
	// set overflows and only min/max pruning applies.
	zoneDistinctCap = 8
	// zoneValueCap bounds stored value length.
	zoneValueCap = 128
)

// colZone summarizes one column of one page.
type colZone struct {
	min, max string
	// maxOK reports that max is a usable upper bound (no truncation).
	maxOK bool
	// distinct is the complete distinct value set unless overflow.
	distinct []string
	// overflow marks the distinct set incomplete (too many values, or
	// a value too long to store exactly).
	overflow bool
}

// pageZone is one page's zones, one per schema column.
type pageZone []colZone

// buildPageZone summarizes rows (non-empty) for a schema.
func buildPageZone(schema Schema, rows []Tuple) pageZone {
	pz := make(pageZone, schema.Arity())
	seen := make([]bool, len(pz))
	for i := range pz {
		pz[i].maxOK = true
	}
	for _, tp := range rows {
		for c := range pz {
			z := &pz[c]
			v := renderCell(tp[c])
			truncated := false
			if len(v) > zoneValueCap {
				// The truncated prefix stays a valid lower bound but not
				// an upper one, and the distinct set can no longer answer
				// membership exactly.
				v = v[:zoneValueCap]
				truncated = true
			}
			if !seen[c] {
				seen[c] = true
				z.min, z.max = v, v
			} else {
				if v < z.min {
					z.min = v
				}
				if v > z.max {
					z.max = v
				}
			}
			if truncated {
				z.maxOK = false
				z.overflow = true
				z.distinct = nil
				continue
			}
			if z.overflow {
				continue
			}
			found := false
			for _, d := range z.distinct {
				if d == v {
					found = true
					break
				}
			}
			if !found {
				if len(z.distinct) >= zoneDistinctCap {
					z.overflow = true
					z.distinct = nil
				} else {
					z.distinct = append(z.distinct, v)
				}
			}
		}
	}
	return pz
}

// mayMatch reports whether any row on the page could satisfy the
// compiled conjunction. Conservative: false only when provably no
// row matches.
func (pz pageZone) mayMatch(m matcher) bool {
	for _, p := range m.preds {
		if p.col >= len(pz) {
			continue
		}
		z := pz[p.col]
		if !z.overflow {
			found := false
			for _, d := range z.distinct {
				if d == p.want {
					found = true
					break
				}
			}
			if !found {
				return false
			}
			continue
		}
		if p.want < z.min {
			return false
		}
		if z.maxOK && p.want > z.max {
			return false
		}
	}
	return true
}

// encodeZoneLine encodes one column zone as an escaped-TSV line:
// maxOK, overflow flags, min, max, then the distinct values.
func encodeZoneLine(z colZone) string {
	flag := func(b bool) string {
		if b {
			return "1"
		}
		return "0"
	}
	fields := []string{flag(z.maxOK), flag(z.overflow), escapeTSV(z.min), escapeTSV(z.max)}
	for _, d := range z.distinct {
		fields = append(fields, escapeTSV(d))
	}
	return strings.Join(fields, "\t")
}

// decodeZoneLine parses one encodeZoneLine line.
func decodeZoneLine(line string) (colZone, error) {
	parts, err := splitTSV(line)
	if err != nil {
		return colZone{}, err
	}
	if len(parts) < 4 {
		return colZone{}, fmt.Errorf("kbase: zone line has %d fields, want >= 4", len(parts))
	}
	z := colZone{maxOK: parts[0] == "1", overflow: parts[1] == "1", min: parts[2], max: parts[3]}
	if rest := parts[4:]; len(rest) > 0 {
		z.distinct = append([]string(nil), rest...)
	}
	return z, nil
}

// writeZoneFile persists one page's zones as a sidecar next to the
// page file: one encodeZoneLine per column.
func writeZoneFile(path string, pz pageZone) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, z := range pz {
		if _, err := w.WriteString(encodeZoneLine(z) + "\n"); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readZoneFile parses a writeZoneFile sidecar.
func readZoneFile(path string) (pageZone, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pz pageZone
	for _, line := range strings.Split(strings.TrimSuffix(string(body), "\n"), "\n") {
		if line == "" {
			continue
		}
		z, err := decodeZoneLine(line)
		if err != nil {
			return nil, fmt.Errorf("kbase: zone sidecar %s: %w", path, err)
		}
		pz = append(pz, z)
	}
	return pz, nil
}

// writeTableZones serializes a whole table's page zones — the derived
// `<table>.zm` sidecar SaveDB drops next to disk-backed tables'
// snapshots. The format is self-describing and ignored by LoadDB
// (restores rebuild zones by re-inserting rows): a `#page N` header
// per page followed by its column lines.
func writeTableZones(w io.Writer, zones []pageZone) error {
	for p, pz := range zones {
		if _, err := fmt.Fprintf(w, "#page %d\n", p); err != nil {
			return err
		}
		for _, z := range pz {
			if _, err := io.WriteString(w, encodeZoneLine(z)+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}
