package kbase

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// adversarialStrings are the values the pre-escaping TSV writer
// corrupted: structural characters, escape collisions, empties,
// unicode.
var adversarialStrings = []string{
	"",
	" ",
	"\t",
	"\n",
	"\r",
	"\r\n",
	"\\",
	"\\t",
	"\\n",
	`\\`,
	"a\tb",
	"multi\nline\nvalue",
	"trailing\t",
	"\tleading",
	"ends with backslash\\",
	"héllo\t世界",
	"#looks\tlike\na header",
	"mixed \\ \t \n \r soup\\r",
}

func tsvRoundTrip(t *testing.T, tbl *Table) *Table {
	t.Helper()
	var sb strings.Builder
	if err := tbl.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadTSV: %v (serialized: %q)", err, sb.String())
	}
	return got
}

// TestTSVRoundTripAdversarial checks that string values containing
// tabs, newlines and backslashes survive WriteTSV -> ReadTSV exactly
// instead of shearing the row.
func TestTSVRoundTripAdversarial(t *testing.T) {
	s, err := NewSchema("adversarial", "a", "b", "n:int")
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s)
	for i, a := range adversarialStrings {
		for j, b := range adversarialStrings {
			if _, err := tbl.Insert(Tuple{a, b, int64(i*100 + j)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := tsvRoundTrip(t, tbl)
	if !reflect.DeepEqual(got.Tuples(), tbl.Tuples()) {
		t.Fatal("adversarial tuples did not round-trip")
	}
}

// TestTSVRoundTripProperty fuzzes random tuples (drawn from an
// alphabet heavy in structural characters) through the TSV round trip
// and requires exact tuple and schema equality.
func TestTSVRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune{'a', 'b', '\t', '\n', '\r', '\\', 't', 'n', ' ', '#', ':', 'ß', '日'}
	randString := func() string {
		n := rng.Intn(12)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for trial := 0; trial < 50; trial++ {
		s, err := NewSchema("prop", "s1", "s2", "i:integer", "f:float")
		if err != nil {
			t.Fatal(err)
		}
		tbl := NewTable(s)
		for r := 0; r < 20; r++ {
			tp := Tuple{randString(), randString(), int64(rng.Intn(1000) - 500), rng.NormFloat64()}
			if _, err := tbl.Insert(tp); err != nil {
				t.Fatal(err)
			}
		}
		got := tsvRoundTrip(t, tbl)
		if !reflect.DeepEqual(got.Tuples(), tbl.Tuples()) {
			t.Fatalf("trial %d: tuples did not round-trip", trial)
		}
		if !reflect.DeepEqual(got.Schema(), tbl.Schema()) {
			t.Fatalf("trial %d: schema did not round-trip", trial)
		}
	}
}

// TestTSVLongLine verifies the reader has no line-length cap: a value
// well past the old 1 MiB bufio.Scanner buffer round-trips.
func TestTSVLongLine(t *testing.T) {
	s, err := NewSchema("long", "v")
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s)
	huge := strings.Repeat("x", 2<<20) // 2 MiB, over the old cap
	if _, err := tbl.Insert(Tuple{huge}); err != nil {
		t.Fatal(err)
	}
	got := tsvRoundTrip(t, tbl)
	if got.Len() != 1 || got.Tuples()[0][0].(string) != huge {
		t.Fatal("2 MiB value did not round-trip")
	}
}

func TestUnescapeErrors(t *testing.T) {
	for _, bad := range []string{`dangling\`, `unknown\q`} {
		if _, err := unescapeTSV(bad); err == nil {
			t.Errorf("unescapeTSV(%q) should error", bad)
		}
	}
}

func TestTableDelete(t *testing.T) {
	s, err := NewSchema("d", "k", "v:int")
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(s)
	for i := 0; i < 5; i++ {
		if _, err := tbl.Insert(Tuple{string(rune('a' + i)), i}); err != nil {
			t.Fatal(err)
		}
	}
	if !tbl.Delete(Tuple{"c", 2}) {
		t.Fatal("delete existing")
	}
	if tbl.Delete(Tuple{"c", 2}) {
		t.Fatal("double delete")
	}
	if tbl.Len() != 4 || tbl.Contains(Tuple{"c", 2}) {
		t.Fatalf("len = %d", tbl.Len())
	}
	// Index stays consistent after the re-pack.
	if !tbl.Contains(Tuple{"e", 4}) || !tbl.Contains(Tuple{"a", 0}) {
		t.Fatal("index corrupted by delete")
	}
	if _, err := tbl.Insert(Tuple{"c", 2}); err != nil {
		t.Fatal(err)
	}
	if n := tbl.DeleteWhere(func(tp Tuple) bool { return tp[1].(int64) >= 2 }); n != 3 {
		t.Fatalf("DeleteWhere = %d", n)
	}
	if tbl.Len() != 2 || tbl.Contains(Tuple{"c", 2}) {
		t.Fatalf("after DeleteWhere len = %d", tbl.Len())
	}
	if n := tbl.DeleteWhere(func(Tuple) bool { return false }); n != 0 {
		t.Fatalf("no-op DeleteWhere = %d", n)
	}
}

// TestDBSnapshotRestore exercises the whole-database snapshot: build a
// DB with adversarial values across several typed tables, SaveDB,
// LoadDB, and require table-by-table set equality via Compare.
func TestDBSnapshotRestore(t *testing.T) {
	db := NewDB()
	s1, _ := NewSchema("rel_a", "name", "score:float")
	s2, _ := NewSchema("rel_b", "doc", "pos:int", "words")
	s3, _ := NewSchema("rel_empty", "x")
	t1, _ := db.Create(s1)
	t2, _ := db.Create(s2)
	if _, err := db.Create(s3); err != nil {
		t.Fatal(err)
	}
	for i, v := range adversarialStrings {
		if _, err := t1.Insert(Tuple{v, float64(i) / 3}); err != nil {
			t.Fatal(err)
		}
		if _, err := t2.Insert(Tuple{"doc\t1", i, v + "\n" + v}); err != nil {
			t.Fatal(err)
		}
	}
	dir := filepath.Join(t.TempDir(), "snap")
	if err := SaveDB(db, dir); err != nil {
		t.Fatal(err)
	}
	if !IsSnapshot(dir) {
		t.Fatal("IsSnapshot must see the manifest")
	}
	got, err := LoadDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Names(), db.Names()) {
		t.Fatalf("names = %v, want %v", got.Names(), db.Names())
	}
	for _, name := range db.Names() {
		cmp := Compare(got.Table(name), db.Table(name))
		if cmp.NewEntries != 0 || cmp.Overlap != db.Table(name).Len() || cmp.GotEntries != cmp.RefEntries {
			t.Fatalf("table %s: restore mismatch %+v", name, cmp)
		}
	}
	if !EqualDB(db, got) {
		t.Fatal("EqualDB must hold after restore")
	}
	// A second snapshot from the restored DB is byte-compatible at the
	// relation level too.
	dir2 := filepath.Join(t.TempDir(), "snap2")
	if err := SaveDB(got, dir2); err != nil {
		t.Fatal(err)
	}
	again, err := LoadDB(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualDB(db, again) {
		t.Fatal("snapshot -> restore -> snapshot -> restore drifted")
	}
}

// TestTSVEmptyRows: rows made entirely of empty strings produce lines
// of bare tabs (or, single-column, an empty line) and must survive the
// round trip — the old blank-line skip silently dropped them.
func TestTSVEmptyRows(t *testing.T) {
	s1, _ := NewSchema("one", "v")
	tbl1 := NewTable(s1)
	for _, v := range []string{"", "x", " "} {
		if _, err := tbl1.Insert(Tuple{v}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tsvRoundTrip(t, tbl1); !reflect.DeepEqual(got.Tuples(), tbl1.Tuples()) {
		t.Fatalf("single-column empty rows lost: %d of %d", got.Len(), tbl1.Len())
	}

	s2, _ := NewSchema("two", "a", "b")
	tbl2 := NewTable(s2)
	if _, err := tbl2.Insert(Tuple{"", ""}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl2.Insert(Tuple{" ", "\t"}); err != nil {
		t.Fatal(err)
	}
	if got := tsvRoundTrip(t, tbl2); !reflect.DeepEqual(got.Tuples(), tbl2.Tuples()) {
		t.Fatalf("all-empty rows lost: %d of %d", got.Len(), tbl2.Len())
	}
}

// TestSaveDBRefusesNonSnapshot: the atomic swap must never displace a
// pre-existing directory that is not a snapshot (user data).
func TestSaveDBRefusesNonSnapshot(t *testing.T) {
	db := NewDB()
	s, _ := NewSchema("r", "x")
	if _, err := db.Create(s); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "target")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	precious := filepath.Join(dir, "precious.txt")
	if err := os.WriteFile(precious, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := SaveDB(db, dir); err == nil {
		t.Fatal("overwriting a non-snapshot directory must error")
	}
	if _, err := os.Stat(precious); err != nil {
		t.Fatalf("non-snapshot content was destroyed: %v", err)
	}
	// An empty pre-existing directory is fine.
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SaveDB(db, empty); err != nil {
		t.Fatalf("empty target dir must be usable: %v", err)
	}
	if !IsSnapshot(empty) {
		t.Fatal("snapshot not written")
	}
}

// TestSaveDBOverwrite re-snapshots into an existing directory and
// checks the swap is clean: the new content is loadable, and neither
// the temp dir nor the retired ".old" copy survives.
func TestSaveDBOverwrite(t *testing.T) {
	db := NewDB()
	s, _ := NewSchema("r", "k", "v:int")
	tbl, _ := db.Create(s)
	if _, err := tbl.Insert(Tuple{"a", 1}); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "snap")
	if err := SaveDB(db, dir); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Tuple{"b", 2}); err != nil {
		t.Fatal(err)
	}
	if err := SaveDB(db, dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDB(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Table("r").Len() != 2 {
		t.Fatalf("overwritten snapshot has %d rows", got.Table("r").Len())
	}
	entries, err := os.ReadDir(filepath.Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "snap" {
			t.Fatalf("stray snapshot artifact %q left behind", e.Name())
		}
	}
}

func TestLoadDBErrors(t *testing.T) {
	if _, err := LoadDB(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing manifest must error")
	}
	if err := SaveDB(func() *DB {
		db := NewDB()
		s, _ := NewSchema("bad/name", "x")
		_, _ = db.Create(s)
		return db
	}(), t.TempDir()); err == nil {
		t.Fatal("unsafe table name must error")
	}
}
