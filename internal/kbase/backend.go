package kbase

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Pred is one pushed-down predicate: an exact equality test between a
// column's *rendered* value (what fmt.Sprint produces — the contract
// the serving layer's /kb column filters already expose) and Want.
// Multiple predicates conjoin. Rendered-value semantics keep pushdown
// bit-identical to the legacy filter loop: a non-canonical probe like
// "007" or "+7" against an integer column matches nothing, exactly as
// string-comparing fmt.Sprint output did.
type Pred struct {
	// Col is the schema column index.
	Col int
	// Want is the rendered value to match exactly.
	Want string
}

// renderCell renders a stored cell exactly as fmt.Sprint does, with
// allocation-free fast paths for the three normalized storage types.
func renderCell(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		return fmt.Sprint(v)
	}
}

// matcher is a compiled predicate conjunction. Compilation happens
// once per query so the per-row check avoids fmt in the hot loop:
// string columns compare directly, integer columns compare parsed
// int64s (after proving the probe is the canonical rendering), and
// everything else falls back to the rendered comparison.
type matcher struct {
	// impossible marks a conjunction no row can satisfy (a probe that
	// is not the canonical rendering of any value of its column type).
	impossible bool
	preds      []compiledPred
}

type compiledPred struct {
	col    int
	want   string // rendered probe (zone-map checks use this)
	intVal int64  // parsed probe when intOK
	intOK  bool
}

// compilePreds compiles a conjunction against the schema. The preds
// slice is not retained; predicates are evaluated in ascending column
// order so plan choice is deterministic regardless of caller ordering.
func compilePreds(schema Schema, preds []Pred) matcher {
	m := matcher{preds: make([]compiledPred, 0, len(preds))}
	for _, p := range preds {
		cp := compiledPred{col: p.Col, want: p.Want}
		if p.Col < 0 || p.Col >= schema.Arity() {
			m.impossible = true
			return m
		}
		if schema.Columns[p.Col].Type == IntCol {
			n, err := strconv.ParseInt(p.Want, 10, 64)
			if err == nil && strconv.FormatInt(n, 10) == p.Want {
				cp.intVal, cp.intOK = n, true
			} else {
				// fmt.Sprint(int64) only ever emits the canonical
				// rendering, so a non-canonical probe matches nothing.
				m.impossible = true
				return m
			}
		}
		m.preds = append(m.preds, cp)
	}
	sort.SliceStable(m.preds, func(i, j int) bool { return m.preds[i].col < m.preds[j].col })
	return m
}

// match reports whether the row satisfies every predicate. Rows are
// trusted to be normalized (Table.Insert widened ints to int64), with
// a rendered-comparison fallback for anything unexpected.
func (m matcher) match(tp Tuple) bool {
	for _, p := range m.preds {
		v := tp[p.col]
		if p.intOK {
			if n, ok := v.(int64); ok {
				if n != p.intVal {
					return false
				}
				continue
			}
		}
		if s, ok := v.(string); ok {
			if s != p.want {
				return false
			}
			continue
		}
		if renderCell(v) != p.want {
			return false
		}
	}
	return true
}

// Backend is the pluggable row-storage engine behind a Table. A Table
// owns exactly one backend and layers relational semantics on top of
// it — schema/type checking, tuple normalization, and set semantics
// via a compact hash index — so every backend only has to store an
// ordered row sequence.
//
// The three implementations are the in-memory engine (rows in a
// slice, the original representation), the disk-paged engine
// (fixed-size row pages on disk behind a small LRU page cache, so a
// table's resident footprint is the cache plus one partial tail page
// no matter how many rows it holds), and the columnar engine
// (fixed-size pages as column-major binary blobs in memory, so
// filtered reads decode predicate columns only).
//
// Contract, relied on by Table and by the cross-backend equivalence
// tests:
//
//   - Append preserves insertion order; Scan, Page, Snapshot and Get
//     observe rows in exactly that order.
//   - Get and Scan hand out *borrowed* tuples that must not be
//     retained or modified (Table's cloning read paths detach them).
//   - DeleteWhere keeps survivors in relative order and re-packs
//     positions densely (row i is the i-th surviving row).
//   - Snapshot streams the rows in the escaped-TSV row encoding of
//     WriteTSV, so a table's serialized bytes are identical across
//     backends holding the same rows in the same order.
type Backend interface {
	// Kind names the backend (one of BackendKinds).
	Kind() string
	// Len returns the number of stored rows.
	Len() int
	// Append stores a normalized tuple at position Len().
	Append(tp Tuple) error
	// Get returns the row at position i (borrowed; do not retain or
	// modify). It panics when i is out of range — positions come from
	// the Table's index and are trusted.
	Get(i int) Tuple
	// Scan calls fn for each row in insertion order until fn returns
	// false. The tuple is borrowed.
	Scan(fn func(Tuple) bool)
	// Page returns detached clones of up to limit rows starting at
	// offset; limit <= 0 means "to the end", offsets past the end
	// return nil.
	Page(offset, limit int) []Tuple
	// ScanWhere calls fn for each row satisfying every predicate, in
	// insertion order, until fn returns false. The tuple is borrowed.
	// Backends may prune storage regions (disk pages) that provably
	// contain no match, but must never skip a matching row.
	ScanWhere(preds []Pred, fn func(Tuple) bool)
	// PageWhere returns detached clones of up to limit matching rows
	// starting at the offset-th match (same offset/limit semantics as
	// Page), plus the exact total number of matching rows. Cloning
	// stops once the window fills; counting always runs to the end so
	// total is exact on every backend and plan.
	PageWhere(preds []Pred, offset, limit int) ([]Tuple, int)
	// DeleteWhere removes rows satisfying pred, returning how many
	// were removed.
	DeleteWhere(pred func(Tuple) bool) int
	// Snapshot writes the rows (no header) in the WriteTSV row
	// encoding.
	Snapshot(w io.Writer) error
	// Stats reports the backend's paging counters (zero-valued for
	// the in-memory engine).
	Stats() BackendStats
	// Close releases backend resources (disk pages). The backend is
	// unusable afterwards.
	Close() error
}

// BackendStats are one backend's paging and query-plan counters. The
// paging counters come from the backend itself; the plan counters
// (IndexHits, FullScans) are recorded by the Table-level planner and
// merged in by Table.BackendStats.
type BackendStats struct {
	// Pages counts full row pages: on disk for the disk engine,
	// encoded column-major in memory for the columnar engine.
	Pages int
	// CacheHits / CacheMisses count page-cache lookups. A miss reads
	// (disk) or decodes (columnar) one full page.
	CacheHits, CacheMisses int64
	// PagesSkipped counts pages pruned by zone maps during filtered
	// reads — pages never read, decoded, or cached.
	PagesSkipped int64
	// IndexHits counts filtered reads answered through a hash index;
	// FullScans counts filtered reads that had to scan (on the disk
	// engine, still zone-map pruned).
	IndexHits, FullScans int64
}

// Add accumulates other's counters into s (Pages included: callers
// summing stats across tables want total resident pages). Used when
// aggregating one store's tables or a serving view plus its store.
func (s *BackendStats) Add(other BackendStats) {
	s.Pages += other.Pages
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.PagesSkipped += other.PagesSkipped
	s.IndexHits += other.IndexHits
	s.FullScans += other.FullScans
}

// Engine creates backends — one per table — sharing a storage policy
// (and, for the disk engine, a spill directory).
type Engine interface {
	// Kind names the engine; every backend it creates reports the
	// same kind.
	Kind() string
	// NewBackend creates an empty backend for one table.
	NewBackend(schema Schema) (Backend, error)
	// Close releases engine-wide resources. Backends created by the
	// engine must be closed first.
	Close() error
}

// BackendKinds lists the storage engine names NewEngine accepts, in
// presentation order. The empty string resolves to "memory". Every
// surface that validates an engine name (CLI flags, tenant configs,
// the HTTP admin API) derives its message from this list, so the
// valid set can never drift per layer.
func BackendKinds() []string { return []string{"memory", "disk", "columnar"} }

// ValidBackendKind reports whether kind names a storage engine ("" is
// valid and selects the default in-memory engine).
func ValidBackendKind(kind string) bool {
	if kind == "" {
		return true
	}
	for _, k := range BackendKinds() {
		if k == kind {
			return true
		}
	}
	return false
}

// BackendKindsWant renders BackendKinds for error and usage messages:
// "memory, disk or columnar".
func BackendKindsWant() string {
	ks := BackendKinds()
	return strings.Join(ks[:len(ks)-1], ", ") + " or " + ks[len(ks)-1]
}

// NewEngine resolves an engine kind: "" or "memory" is the in-memory
// engine, "disk" the disk-paged engine with default page geometry
// spilling under dir (a fresh temporary directory when dir is empty),
// "columnar" the in-memory columnar engine with default page
// geometry.
func NewEngine(kind, dir string) (Engine, error) {
	switch kind {
	case "", "memory":
		return MemoryEngine{}, nil
	case "disk":
		return NewDiskEngine(dir, 0, 0)
	case "columnar":
		return NewColumnarEngine(0, 0), nil
	default:
		return nil, fmt.Errorf("kbase: unknown backend %q (want %s)", kind, BackendKindsWant())
	}
}

// MemoryEngine creates in-memory backends — the original
// representation: every row resident, zero I/O.
type MemoryEngine struct{}

// Kind returns "memory".
func (MemoryEngine) Kind() string { return "memory" }

// NewBackend creates an empty in-memory backend.
func (MemoryEngine) NewBackend(schema Schema) (Backend, error) {
	return &memoryBackend{schema: schema}, nil
}

// Close is a no-op.
func (MemoryEngine) Close() error { return nil }

// memoryBackend stores rows in a slice.
type memoryBackend struct {
	schema Schema
	tuples []Tuple
}

func (b *memoryBackend) Kind() string { return "memory" }

func (b *memoryBackend) Len() int { return len(b.tuples) }

func (b *memoryBackend) Append(tp Tuple) error {
	b.tuples = append(b.tuples, tp)
	return nil
}

func (b *memoryBackend) Get(i int) Tuple { return b.tuples[i] }

func (b *memoryBackend) Scan(fn func(Tuple) bool) {
	for _, tp := range b.tuples {
		if !fn(tp) {
			return
		}
	}
}

func (b *memoryBackend) Page(offset, limit int) []Tuple {
	lo, hi := clipPage(len(b.tuples), offset, limit)
	if lo >= hi {
		return nil
	}
	out := make([]Tuple, 0, hi-lo)
	for _, tp := range b.tuples[lo:hi] {
		out = append(out, tp.Clone())
	}
	return out
}

func (b *memoryBackend) ScanWhere(preds []Pred, fn func(Tuple) bool) {
	m := compilePreds(b.schema, preds)
	if m.impossible {
		return
	}
	// Tight loop: no clone, no fmt — match borrows the stored tuple.
	for _, tp := range b.tuples {
		if m.match(tp) && !fn(tp) {
			return
		}
	}
}

func (b *memoryBackend) PageWhere(preds []Pred, offset, limit int) ([]Tuple, int) {
	m := compilePreds(b.schema, preds)
	if m.impossible {
		return nil, 0
	}
	if offset < 0 {
		offset = 0
	}
	var out []Tuple
	total := 0
	for _, tp := range b.tuples {
		if !m.match(tp) {
			continue
		}
		// Clone only in-window matches; keep counting past the window
		// so total is exact.
		if total >= offset && (limit <= 0 || len(out) < limit) {
			out = append(out, tp.Clone())
		}
		total++
	}
	return out, total
}

func (b *memoryBackend) DeleteWhere(pred func(Tuple) bool) int {
	kept := b.tuples[:0]
	deleted := 0
	for _, tp := range b.tuples {
		if pred(tp) {
			deleted++
			continue
		}
		kept = append(kept, tp)
	}
	// Clear the re-packed slice's tail so deleted rows are collectable.
	for i := len(kept); i < len(b.tuples); i++ {
		b.tuples[i] = nil
	}
	b.tuples = kept
	return deleted
}

func (b *memoryBackend) Snapshot(w io.Writer) error {
	for _, tp := range b.tuples {
		if _, err := io.WriteString(w, encodeTupleTSV(tp)+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func (b *memoryBackend) Stats() BackendStats { return BackendStats{} }

func (b *memoryBackend) Close() error {
	b.tuples = nil
	return nil
}

// clipPage clips [offset, offset+limit) to n rows, comparing limit
// against the remaining window rather than computing offset+limit,
// which a huge caller-supplied limit would overflow.
func clipPage(n, offset, limit int) (lo, hi int) {
	if offset < 0 {
		offset = 0
	}
	if offset >= n {
		return n, n
	}
	hi = n
	if limit > 0 && limit < hi-offset {
		hi = offset + limit
	}
	return offset, hi
}

// hashKey hashes a canonical tuple key for the Table's dedup index.
// Positions sharing a hash are verified against the stored row, so
// collisions cost a row fetch, never a correctness failure.
func hashKey(k string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, k)
	return h.Sum64()
}
