package kbase

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTSV serializes the table as tab-separated values with a header
// line of "name:type" column specs, so a table round-trips through
// ReadTSV with its schema intact.
func (t *Table) WriteTSV(w io.Writer) error {
	specs := make([]string, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		specs[i] = c.Name + ":" + c.Type.String()
	}
	if _, err := fmt.Fprintf(w, "#%s\t%s\n", t.schema.Name, strings.Join(specs, "\t")); err != nil {
		return err
	}
	var firstErr error
	t.Scan(func(tp Tuple) bool {
		parts := make([]string, len(tp))
		for i, v := range tp {
			parts[i] = fmt.Sprint(v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(parts, "\t")); err != nil {
			firstErr = err
			return false
		}
		return true
	})
	return firstErr
}

// ReadTSV parses a table previously written by WriteTSV, rebuilding
// the schema from the header line and type-converting every value.
func ReadTSV(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("kbase: reading TSV header: %w", err)
		}
		return nil, fmt.Errorf("kbase: empty TSV input")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "#") {
		return nil, fmt.Errorf("kbase: TSV header must start with '#', got %q", header)
	}
	fields := strings.Split(header[1:], "\t")
	if len(fields) < 2 {
		return nil, fmt.Errorf("kbase: malformed TSV header %q", header)
	}
	name := fields[0]
	specs := make([]string, 0, len(fields)-1)
	for _, f := range fields[1:] {
		// Normalize "col:varchar" etc. back into NewSchema's grammar.
		specs = append(specs, strings.Replace(f, ":varchar", "", 1))
	}
	schema, err := NewSchema(name, specs...)
	if err != nil {
		return nil, err
	}
	t := NewTable(schema)
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != schema.Arity() {
			return nil, fmt.Errorf("kbase: TSV line %d: %d values, want %d", lineNo, len(parts), schema.Arity())
		}
		tp := make(Tuple, len(parts))
		for i, p := range parts {
			switch schema.Columns[i].Type {
			case IntCol:
				v, err := strconv.ParseInt(p, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("kbase: TSV line %d: %v", lineNo, err)
				}
				tp[i] = v
			case FloatCol:
				v, err := strconv.ParseFloat(p, 64)
				if err != nil {
					return nil, fmt.Errorf("kbase: TSV line %d: %v", lineNo, err)
				}
				tp[i] = v
			default:
				tp[i] = p
			}
		}
		if _, err := t.Insert(tp); err != nil {
			return nil, fmt.Errorf("kbase: TSV line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("kbase: reading TSV: %w", err)
	}
	return t, nil
}
