package kbase

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// TSV field escaping: tabs and newlines are the format's structural
// characters, so string values containing them must be encoded or a
// row shears apart on read. The scheme is the usual minimal one —
// backslash-escape the backslash itself plus the three characters TSV
// cannot carry raw:
//
//	\  -> \\    tab -> \t    newline -> \n    carriage return -> \r
//
// Every tab-separated field (header and data alike) goes through the
// same escape/unescape pair, so any Go string round-trips.
const tsvEscapes = "\\\t\n\r"

// escapeTSV encodes one field for embedding in a TSV line.
func escapeTSV(s string) string {
	if !strings.ContainsAny(s, tsvEscapes) {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '\t':
			sb.WriteString(`\t`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// unescapeTSV decodes a field written by escapeTSV.
func unescapeTSV(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			sb.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("kbase: dangling backslash in TSV field %q", s)
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case 't':
			sb.WriteByte('\t')
		case 'n':
			sb.WriteByte('\n')
		case 'r':
			sb.WriteByte('\r')
		default:
			return "", fmt.Errorf("kbase: unknown escape \\%c in TSV field %q", s[i], s)
		}
	}
	return sb.String(), nil
}

// splitTSV splits a line into unescaped fields.
func splitTSV(line string) ([]string, error) {
	raw := strings.Split(line, "\t")
	out := make([]string, len(raw))
	for i, f := range raw {
		v, err := unescapeTSV(f)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// encodeTupleTSV renders one tuple as an escaped TSV line (no
// trailing newline) — the row encoding shared by WriteTSV and the
// disk backend's page files, which is what makes a table's serialized
// bytes identical across backends.
func encodeTupleTSV(tp Tuple) string {
	parts := make([]string, len(tp))
	for i, v := range tp {
		parts[i] = escapeTSV(fmt.Sprint(v))
	}
	return strings.Join(parts, "\t")
}

// parseTupleFields type-converts one row's unescaped fields against
// the schema.
func parseTupleFields(schema Schema, parts []string) (Tuple, error) {
	if len(parts) != schema.Arity() {
		return nil, fmt.Errorf("%d values, want %d", len(parts), schema.Arity())
	}
	tp := make(Tuple, len(parts))
	for i, p := range parts {
		switch schema.Columns[i].Type {
		case IntCol:
			v, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				return nil, err
			}
			tp[i] = v
		case FloatCol:
			v, err := strconv.ParseFloat(p, 64)
			if err != nil {
				return nil, err
			}
			tp[i] = v
		default:
			tp[i] = p
		}
	}
	return tp, nil
}

// WriteTSV serializes the table as tab-separated values with a header
// line of "name:type" column specs, so a table round-trips through
// ReadTSV with its schema intact. String values are escaped, so tabs
// and newlines inside values survive the round trip. The row bytes
// come from the backend's Snapshot, which for the disk-paged backend
// is a straight copy of its page files.
func (t *Table) WriteTSV(w io.Writer) error {
	specs := make([]string, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		specs[i] = escapeTSV(c.Name) + ":" + c.Type.String()
	}
	if _, err := fmt.Fprintf(w, "#%s\t%s\n", escapeTSV(t.schema.Name), strings.Join(specs, "\t")); err != nil {
		return err
	}
	return t.be.Snapshot(w)
}

// readLine reads one newline-terminated line of unbounded length,
// returning io.EOF only when no bytes remain. Unlike bufio.Scanner
// there is no line-length cap: a single huge value cannot fail the
// read.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err == io.EOF && line != "" {
		err = nil // final line without trailing newline
	}
	line = strings.TrimSuffix(line, "\n")
	line = strings.TrimSuffix(line, "\r") // tolerate CRLF input
	return line, err
}

// ReadTSV parses a table previously written by WriteTSV, rebuilding
// the schema from the header line and type-converting every value.
// The table is in-memory; ReadTSVWith restores into another engine.
func ReadTSV(r io.Reader) (*Table, error) {
	return ReadTSVWith(r, MemoryEngine{})
}

// ReadTSVWith is ReadTSV with the restored rows stored through the
// given engine — how a disk-backed session resumes a snapshot without
// materializing its relations in memory.
func ReadTSVWith(r io.Reader, engine Engine) (*Table, error) {
	br := bufio.NewReader(r)
	header, err := readLine(br)
	if err == io.EOF {
		return nil, fmt.Errorf("kbase: empty TSV input")
	}
	if err != nil {
		return nil, fmt.Errorf("kbase: reading TSV header: %w", err)
	}
	if !strings.HasPrefix(header, "#") {
		return nil, fmt.Errorf("kbase: TSV header must start with '#', got %q", header)
	}
	fields, err := splitTSV(header[1:])
	if err != nil {
		return nil, err
	}
	if len(fields) < 2 {
		return nil, fmt.Errorf("kbase: malformed TSV header %q", header)
	}
	name := fields[0]
	specs := make([]string, 0, len(fields)-1)
	for _, f := range fields[1:] {
		// Normalize "col:varchar" etc. back into NewSchema's grammar.
		specs = append(specs, strings.Replace(f, ":varchar", "", 1))
	}
	schema, err := NewSchema(name, specs...)
	if err != nil {
		return nil, err
	}
	be, err := engine.NewBackend(schema)
	if err != nil {
		return nil, fmt.Errorf("kbase: creating %s backend for %s: %w", engine.Kind(), schema.Name, err)
	}
	t := newTableWith(schema, be)
	lineNo := 1
	for {
		line, err := readLine(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("kbase: reading TSV: %w", err)
		}
		lineNo++
		// No blank-line skipping: with escaping, every emitted line —
		// including "" (a single empty-string column) and "\t" (a row
		// of empty strings) — is a real row, and WriteTSV never
		// produces spurious blanks.
		parts, err := splitTSV(line)
		if err != nil {
			return nil, fmt.Errorf("kbase: TSV line %d: %w", lineNo, err)
		}
		tp, err := parseTupleFields(schema, parts)
		if err != nil {
			return nil, fmt.Errorf("kbase: TSV line %d: %v", lineNo, err)
		}
		if _, err := t.Insert(tp); err != nil {
			return nil, fmt.Errorf("kbase: TSV line %d: %w", lineNo, err)
		}
	}
	return t, nil
}

// manifestName is the snapshot directory's table-of-contents file. It
// pins the table set, so stray files in the directory are ignored and
// a truncated snapshot is detected as a missing table file.
const manifestName = "MANIFEST"

// SaveDB snapshots a whole database into a directory: one
// "<table>.tsv" file per relation plus a MANIFEST listing the tables.
// The snapshot is written into a fresh temporary sibling directory
// and swapped into place, so a crash or disk-full mid-save can never
// leave a MANIFEST pointing at a mix of old and new table files — dir
// either keeps the previous consistent snapshot (up to the final
// rename pair) or holds the new one.
func SaveDB(db *DB, dir string) error {
	names := db.Names()
	for _, name := range names {
		if !safeTableFile(name) {
			return fmt.Errorf("kbase: table name %q is not snapshot-safe", name)
		}
	}
	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(parent, filepath.Base(dir)+".tmp-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp) // no-op after the successful rename
	for _, name := range names {
		f, err := os.Create(filepath.Join(tmp, name+".tsv"))
		if err != nil {
			return err
		}
		if err := db.Table(name).WriteTSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		// Disk-backed tables also drop a derived "<table>.zm" sidecar
		// with their page zone maps. It is pure metadata: MANIFEST does
		// not list it, LoadDB never reads it (restores rebuild zones by
		// re-inserting rows), and snapshot byte-equality across backends
		// is defined over the MANIFEST'd .tsv files only.
		if be, ok := db.Table(name).be.(*diskBackend); ok {
			if zones := be.pageZones(); len(zones) > 0 {
				zf, err := os.Create(filepath.Join(tmp, name+".zm"))
				if err != nil {
					return err
				}
				if err := writeTableZones(zf, zones); err != nil {
					zf.Close()
					return err
				}
				if err := zf.Close(); err != nil {
					return err
				}
			}
		}
	}
	if err := os.WriteFile(filepath.Join(tmp, manifestName), []byte(strings.Join(names, "\n")+"\n"), 0o644); err != nil {
		return err
	}
	// Swap: retire any existing snapshot, move the new one in. Only a
	// prior snapshot (or an empty directory) is ever displaced —
	// overwriting an arbitrary directory would destroy user data.
	old := dir + ".old"
	if err := os.RemoveAll(old); err != nil {
		return err
	}
	if _, err := os.Stat(dir); err == nil {
		if !IsSnapshot(dir) {
			if rmErr := os.Remove(dir); rmErr != nil { // succeeds only when empty
				return fmt.Errorf("kbase: refusing to overwrite %s: not a snapshot directory", dir)
			}
		} else if err := os.Rename(dir, old); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, dir); err != nil {
		return err
	}
	return os.RemoveAll(old)
}

// LoadDB restores a database from a SaveDB directory into memory.
func LoadDB(dir string) (*DB, error) {
	return LoadDBWith(dir, MemoryEngine{})
}

// LoadDBWith restores a database from a SaveDB directory through the
// given storage engine. The database takes ownership of the engine.
// On error the partially built database is closed, so a failed
// disk-backed load leaks no spill files.
func LoadDBWith(dir string, engine Engine) (*DB, error) {
	body, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		engine.Close()
		return nil, fmt.Errorf("kbase: reading snapshot manifest: %w", err)
	}
	db := NewDBWith(engine)
	fail := func(err error) (*DB, error) {
		db.Close()
		return nil, err
	}
	for _, name := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !safeTableFile(name) {
			return fail(fmt.Errorf("kbase: manifest table name %q is not snapshot-safe", name))
		}
		f, err := os.Open(filepath.Join(dir, name+".tsv"))
		if err != nil {
			return fail(err)
		}
		t, err := ReadTSVWith(f, engine)
		f.Close()
		if err != nil {
			return fail(fmt.Errorf("kbase: table %s: %w", name, err))
		}
		if t.Schema().Name != name {
			t.Close()
			return fail(fmt.Errorf("kbase: snapshot file %s.tsv holds table %q", name, t.Schema().Name))
		}
		if err := db.Attach(t); err != nil {
			t.Close()
			return fail(err)
		}
	}
	return db, nil
}

// IsSnapshot reports whether dir looks like a SaveDB snapshot (it has
// a manifest).
func IsSnapshot(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// safeTableFile accepts table names that map to a plain file inside
// the snapshot directory.
func safeTableFile(name string) bool {
	return name != "" && name != "." && name != ".." &&
		!strings.ContainsAny(name, "/\\\n\t")
}

// EqualDB reports whether two databases hold the same relations with
// the same tuple sets (insertion order is ignored — relations have set
// semantics).
func EqualDB(a, b *DB) bool {
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		return false
	}
	sort.Strings(an)
	for i, name := range an {
		if bn[i] != name {
			return false
		}
		ta, tb := a.Table(name), b.Table(name)
		if ta.Len() != tb.Len() {
			return false
		}
		cmp := Compare(ta, tb)
		if cmp.NewEntries != 0 || cmp.Overlap != ta.Len() {
			return false
		}
	}
	return true
}
