// Package kbase is a small in-memory relational engine playing the
// role PostgreSQL plays in the paper's implementation: it stores the
// target knowledge base (the relations Fonduer populates) plus the
// intermediate Candidates/Features/Labels relations, with schemas,
// typed columns, uniqueness constraints, predicates, and set
// operations used by the evaluation (coverage and accuracy against an
// existing knowledge base).
package kbase

import (
	"fmt"
	"sort"
	"strings"
)

// ColType enumerates supported column types.
type ColType int

// Column types.
const (
	StringCol ColType = iota
	IntCol
	FloatCol
)

// String returns the SQL-ish name of the column type.
func (t ColType) String() string {
	switch t {
	case StringCol:
		return "varchar"
	case IntCol:
		return "integer"
	case FloatCol:
		return "float"
	default:
		return fmt.Sprintf("coltype(%d)", int(t))
	}
}

// Column describes one attribute of a relation schema.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a relation: its name and typed columns. This is the
// KB schema S_R(T1, ..., Tn) the user specifies during KBC
// initialization.
type Schema struct {
	Name    string
	Columns []Column
}

// NewSchema constructs a schema. Column specs take the form
// "name:type" with type in {varchar, integer, float}; a bare "name"
// defaults to varchar.
func NewSchema(name string, colSpecs ...string) (Schema, error) {
	if name == "" {
		return Schema{}, fmt.Errorf("kbase: schema needs a name")
	}
	if len(colSpecs) == 0 {
		return Schema{}, fmt.Errorf("kbase: schema %s needs at least one column", name)
	}
	s := Schema{Name: name}
	seen := map[string]bool{}
	for _, spec := range colSpecs {
		parts := strings.SplitN(spec, ":", 2)
		col := Column{Name: parts[0], Type: StringCol}
		if col.Name == "" {
			return Schema{}, fmt.Errorf("kbase: schema %s: empty column name", name)
		}
		if seen[col.Name] {
			return Schema{}, fmt.Errorf("kbase: schema %s: duplicate column %q", name, col.Name)
		}
		seen[col.Name] = true
		if len(parts) == 2 {
			switch parts[1] {
			case "varchar", "text", "":
				col.Type = StringCol
			case "integer", "int":
				col.Type = IntCol
			case "float", "real":
				col.Type = FloatCol
			default:
				return Schema{}, fmt.Errorf("kbase: schema %s: unknown type %q", name, parts[1])
			}
		}
		s.Columns = append(s.Columns, col)
	}
	return s, nil
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Columns) }

// ColIndex returns the index of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// SQL renders the schema as a CREATE TABLE statement (Example 3.2).
func (s Schema) SQL() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE TABLE %s (\n", s.Name)
	for i, c := range s.Columns {
		fmt.Fprintf(&sb, "    %s %s", c.Name, c.Type)
		if i < len(s.Columns)-1 {
			sb.WriteByte(',')
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(");")
	return sb.String()
}

// Tuple is one row of a relation. Values are strings, int64s or
// float64s matching the schema's column types.
type Tuple []any

// Clone returns a copy of the tuple that shares no storage with the
// receiver. Tuple values are immutable scalars (string/int64/float64),
// so copying the slice fully detaches the clone: mutating it can never
// corrupt a table that handed it out.
func (tp Tuple) Clone() Tuple {
	if tp == nil {
		return nil
	}
	out := make(Tuple, len(tp))
	copy(out, tp)
	return out
}

// Table stores the tuples of one relation with set semantics over the
// full tuple (inserting a duplicate is a no-op, as relation mentions
// are de-duplicated when populating the KB). Row storage is delegated
// to a pluggable Backend — in-memory or disk-paged — while the Table
// keeps the relational semantics: schema/type checking, tuple
// normalization, and the dedup index (a compact hash -> positions map,
// ~16 bytes per row, so set semantics cost bounded memory even when
// the rows themselves live on disk; hash collisions are verified
// against the stored row).
type Table struct {
	schema Schema
	be     Backend
	index  map[uint64][]int // hash of canonical key -> candidate positions
	plan   *planner         // filtered-read planner (lazy hash indexes)
}

// NewTable creates an empty in-memory table for the schema.
func NewTable(schema Schema) *Table {
	be, _ := MemoryEngine{}.NewBackend(schema) // never fails
	return newTableWith(schema, be)
}

// newTableWith wraps an empty backend in a table.
func newTableWith(schema Schema, be Backend) *Table {
	return &Table{schema: schema, be: be, index: map[uint64][]int{}, plan: newPlanner()}
}

// BackendKind names the table's storage backend.
func (t *Table) BackendKind() string { return t.be.Kind() }

// BackendStats reports the table's paging counters (zero-valued for
// the in-memory backend) merged with the planner's plan-choice
// counters.
func (t *Table) BackendStats() BackendStats {
	bs := t.be.Stats()
	t.plan.mu.Lock()
	bs.IndexHits = t.plan.indexHits
	bs.FullScans = t.plan.fullScans
	t.plan.mu.Unlock()
	return bs
}

// Close releases the table's backend resources (disk pages). The
// table is unusable afterwards.
func (t *Table) Close() error {
	t.index = nil
	t.plan.invalidate()
	return t.be.Close()
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of stored tuples.
func (t *Table) Len() int { return t.be.Len() }

// key canonicalizes a tuple for set membership.
func (t *Table) key(tp Tuple) string {
	parts := make([]string, len(tp))
	for i, v := range tp {
		parts[i] = fmt.Sprintf("%v", v)
	}
	return strings.Join(parts, "\x00")
}

// typeOK checks a value against a column type.
func typeOK(v any, ct ColType) bool {
	switch ct {
	case StringCol:
		_, ok := v.(string)
		return ok
	case IntCol:
		_, ok := v.(int64)
		if !ok {
			_, ok = v.(int)
		}
		return ok
	case FloatCol:
		_, ok := v.(float64)
		return ok
	}
	return false
}

// normalize widens int values to int64 and type-checks the tuple
// against the schema when check is set.
func (t *Table) normalize(tp Tuple, check bool) (Tuple, error) {
	if len(tp) != t.schema.Arity() {
		return nil, fmt.Errorf("kbase: %s: arity %d, got %d values", t.schema.Name, t.schema.Arity(), len(tp))
	}
	norm := make(Tuple, len(tp))
	for i, v := range tp {
		if iv, ok := v.(int); ok {
			v = int64(iv)
		}
		if check && !typeOK(v, t.schema.Columns[i].Type) {
			return nil, fmt.Errorf("kbase: %s.%s: value %v (%T) does not match %s",
				t.schema.Name, t.schema.Columns[i].Name, v, v, t.schema.Columns[i].Type)
		}
		norm[i] = v
	}
	return norm, nil
}

// lookup returns the position of the tuple with canonical key k, or
// -1. Hash collisions are resolved by fetching the candidate rows and
// comparing keys.
func (t *Table) lookup(k string) int {
	for _, pos := range t.index[hashKey(k)] {
		if t.key(t.be.Get(pos)) == k {
			return pos
		}
	}
	return -1
}

// rebuildIndex rehashes every stored row — the epilogue of any
// positional change (deletes re-pack positions).
func (t *Table) rebuildIndex() {
	t.index = make(map[uint64][]int, t.be.Len())
	pos := 0
	t.be.Scan(func(tp Tuple) bool {
		h := hashKey(t.key(tp))
		t.index[h] = append(t.index[h], pos)
		pos++
		return true
	})
}

// Insert adds a tuple, enforcing arity and column types. Duplicate
// tuples are ignored. It reports whether the tuple was newly added.
func (t *Table) Insert(tp Tuple) (bool, error) {
	norm, err := t.normalize(tp, true)
	if err != nil {
		return false, err
	}
	k := t.key(norm)
	if t.lookup(k) >= 0 {
		return false, nil
	}
	pos := t.be.Len()
	if err := t.be.Append(norm); err != nil {
		return false, err
	}
	h := hashKey(k)
	t.index[h] = append(t.index[h], pos)
	t.plan.invalidate()
	return true, nil
}

// Contains reports whether an identical tuple is stored.
func (t *Table) Contains(tp Tuple) bool {
	norm, err := t.normalize(tp, false)
	if err != nil {
		return false
	}
	return t.lookup(t.key(norm)) >= 0
}

// Delete removes the exact tuple (after int normalization), reporting
// whether it was present. Deletion re-packs the stored rows, so it is
// O(n). Bulk re-materialization (e.g. a labeling-function edit
// rewriting a Labels column) goes through DeleteWhere, which re-packs
// once for any number of rows.
func (t *Table) Delete(tp Tuple) bool {
	norm, err := t.normalize(tp, false)
	if err != nil {
		return false
	}
	k := t.key(norm)
	if t.lookup(k) < 0 {
		return false
	}
	// Set semantics: exactly one stored row carries this key.
	t.be.DeleteWhere(func(row Tuple) bool { return t.key(row) == k })
	t.rebuildIndex()
	t.plan.invalidate()
	return true
}

// DeleteWhere removes every tuple satisfying pred, returning how many
// were deleted. Surviving tuples keep their relative insertion order.
func (t *Table) DeleteWhere(pred func(Tuple) bool) int {
	deleted := t.be.DeleteWhere(pred)
	if deleted > 0 {
		t.rebuildIndex()
		t.plan.invalidate()
	}
	return deleted
}

// Scan calls fn for every tuple in insertion order; fn returning false
// stops the scan. The tuple passed to fn is *borrowed*: it aliases
// table (or page-cache) storage for the duration of the callback and
// must not be retained or modified (clone it with Tuple.Clone to keep
// it). Scan is the one deliberately zero-copy read path; Select,
// Tuples and Page return detached clones.
func (t *Table) Scan(fn func(Tuple) bool) {
	t.be.Scan(fn)
}

// Select returns clones of the tuples satisfying the predicate. The
// result shares no storage with the table: callers (the serving layer
// hands these out to concurrent readers) may hold or modify them
// freely while the table keeps mutating.
func (t *Table) Select(pred func(Tuple) bool) []Tuple {
	var out []Tuple
	t.be.Scan(func(tp Tuple) bool {
		if pred(tp) {
			out = append(out, tp.Clone())
		}
		return true
	})
	return out
}

// Tuples returns a deep copy of the stored tuples: both the outer
// slice and every tuple are cloned, so the result never aliases table
// storage.
func (t *Table) Tuples() []Tuple {
	out := make([]Tuple, 0, t.be.Len())
	t.be.Scan(func(tp Tuple) bool {
		out = append(out, tp.Clone())
		return true
	})
	return out
}

// Page returns clones of up to limit tuples starting at offset (in
// insertion order) — the pagination read path of the serving layer. A
// negative or zero limit means "to the end"; offsets past the end
// return nil.
func (t *Table) Page(offset, limit int) []Tuple {
	return t.be.Page(offset, limit)
}

// DB is a collection of named tables — the knowledge base. Tables are
// created through the database's storage engine (in-memory unless the
// DB was built with NewDBWith).
type DB struct {
	engine Engine
	tables map[string]*Table
}

// NewDB returns an empty database over the in-memory engine.
func NewDB() *DB { return NewDBWith(MemoryEngine{}) }

// NewDBWith returns an empty database whose tables are created by the
// given storage engine. The database takes ownership of the engine:
// Close closes every table, then the engine.
func NewDBWith(engine Engine) *DB {
	return &DB{engine: engine, tables: map[string]*Table{}}
}

// BackendKind names the database's storage engine.
func (db *DB) BackendKind() string { return db.engine.Kind() }

// Create creates a table for the schema. Creating an existing table is
// an error (the pipeline initializes each KB exactly once).
func (db *DB) Create(schema Schema) (*Table, error) {
	if _, exists := db.tables[schema.Name]; exists {
		return nil, fmt.Errorf("kbase: table %s already exists", schema.Name)
	}
	be, err := db.engine.NewBackend(schema)
	if err != nil {
		return nil, fmt.Errorf("kbase: creating %s backend for %s: %w", db.engine.Kind(), schema.Name, err)
	}
	t := newTableWith(schema, be)
	db.tables[schema.Name] = t
	return t, nil
}

// Close releases every table's backend resources, then the engine's
// (the disk engine removes its spill directory). The database is
// unusable afterwards.
func (db *DB) Close() error {
	var firstErr error
	for _, t := range db.tables {
		if err := t.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	db.tables = map[string]*Table{}
	if err := db.engine.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// DBStats aggregates the paging and query-plan counters of every
// table's backend.
type DBStats struct {
	// Backend is the engine kind ("memory" or "disk").
	Backend string
	// Pages counts full row pages on disk across all tables.
	Pages int
	// CacheHits / CacheMisses sum the tables' page-cache lookups.
	CacheHits, CacheMisses int64
	// PagesSkipped sums disk pages pruned by zone maps on filtered
	// reads.
	PagesSkipped int64
	// IndexHits / FullScans sum the tables' filtered-read plan
	// choices: answered through a hash index vs scanned.
	IndexHits, FullScans int64
}

// HitRate returns the page-cache hit fraction (0 when no lookups).
func (s DBStats) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// Stats aggregates the database's backend statistics.
func (db *DB) Stats() DBStats {
	out := DBStats{Backend: db.engine.Kind()}
	for _, t := range db.tables {
		bs := t.BackendStats()
		out.Pages += bs.Pages
		out.CacheHits += bs.CacheHits
		out.CacheMisses += bs.CacheMisses
		out.PagesSkipped += bs.PagesSkipped
		out.IndexHits += bs.IndexHits
		out.FullScans += bs.FullScans
	}
	return out
}

// Attach adds an existing table (e.g. one parsed by ReadTSV) to the
// database under its schema name. Attaching over an existing table is
// an error, mirroring Create.
func (db *DB) Attach(t *Table) error {
	name := t.Schema().Name
	if _, exists := db.tables[name]; exists {
		return fmt.Errorf("kbase: table %s already exists", name)
	}
	db.tables[name] = t
	return nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// Names returns the sorted table names.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Compare summarizes how table got relates to an existing reference
// table ref with an identical schema, the comparison Table 3 of the
// paper performs against expert-curated knowledge bases:
//
//	Coverage  = |got ∩ ref| / |ref|   (how much of the existing KB we found)
//	NewEntries = |got \ ref|           (entries we found beyond the KB)
type Comparison struct {
	RefEntries int
	GotEntries int
	Overlap    int
	NewEntries int
	Coverage   float64
}

// Compare computes the Table 3 comparison between got and ref.
func Compare(got, ref *Table) Comparison {
	c := Comparison{RefEntries: ref.Len(), GotEntries: got.Len()}
	got.Scan(func(tp Tuple) bool {
		if ref.Contains(tp) {
			c.Overlap++
		} else {
			c.NewEntries++
		}
		return true
	})
	if ref.Len() > 0 {
		c.Coverage = float64(c.Overlap) / float64(ref.Len())
	}
	return c
}
