// Package kbase is a small in-memory relational engine playing the
// role PostgreSQL plays in the paper's implementation: it stores the
// target knowledge base (the relations Fonduer populates) plus the
// intermediate Candidates/Features/Labels relations, with schemas,
// typed columns, uniqueness constraints, predicates, and set
// operations used by the evaluation (coverage and accuracy against an
// existing knowledge base).
package kbase

import (
	"fmt"
	"sort"
	"strings"
)

// ColType enumerates supported column types.
type ColType int

// Column types.
const (
	StringCol ColType = iota
	IntCol
	FloatCol
)

// String returns the SQL-ish name of the column type.
func (t ColType) String() string {
	switch t {
	case StringCol:
		return "varchar"
	case IntCol:
		return "integer"
	case FloatCol:
		return "float"
	default:
		return fmt.Sprintf("coltype(%d)", int(t))
	}
}

// Column describes one attribute of a relation schema.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a relation: its name and typed columns. This is the
// KB schema S_R(T1, ..., Tn) the user specifies during KBC
// initialization.
type Schema struct {
	Name    string
	Columns []Column
}

// NewSchema constructs a schema. Column specs take the form
// "name:type" with type in {varchar, integer, float}; a bare "name"
// defaults to varchar.
func NewSchema(name string, colSpecs ...string) (Schema, error) {
	if name == "" {
		return Schema{}, fmt.Errorf("kbase: schema needs a name")
	}
	if len(colSpecs) == 0 {
		return Schema{}, fmt.Errorf("kbase: schema %s needs at least one column", name)
	}
	s := Schema{Name: name}
	seen := map[string]bool{}
	for _, spec := range colSpecs {
		parts := strings.SplitN(spec, ":", 2)
		col := Column{Name: parts[0], Type: StringCol}
		if col.Name == "" {
			return Schema{}, fmt.Errorf("kbase: schema %s: empty column name", name)
		}
		if seen[col.Name] {
			return Schema{}, fmt.Errorf("kbase: schema %s: duplicate column %q", name, col.Name)
		}
		seen[col.Name] = true
		if len(parts) == 2 {
			switch parts[1] {
			case "varchar", "text", "":
				col.Type = StringCol
			case "integer", "int":
				col.Type = IntCol
			case "float", "real":
				col.Type = FloatCol
			default:
				return Schema{}, fmt.Errorf("kbase: schema %s: unknown type %q", name, parts[1])
			}
		}
		s.Columns = append(s.Columns, col)
	}
	return s, nil
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Columns) }

// ColIndex returns the index of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// SQL renders the schema as a CREATE TABLE statement (Example 3.2).
func (s Schema) SQL() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE TABLE %s (\n", s.Name)
	for i, c := range s.Columns {
		fmt.Fprintf(&sb, "    %s %s", c.Name, c.Type)
		if i < len(s.Columns)-1 {
			sb.WriteByte(',')
		}
		sb.WriteByte('\n')
	}
	sb.WriteString(");")
	return sb.String()
}

// Tuple is one row of a relation. Values are strings, int64s or
// float64s matching the schema's column types.
type Tuple []any

// Clone returns a copy of the tuple that shares no storage with the
// receiver. Tuple values are immutable scalars (string/int64/float64),
// so copying the slice fully detaches the clone: mutating it can never
// corrupt a table that handed it out.
func (tp Tuple) Clone() Tuple {
	if tp == nil {
		return nil
	}
	out := make(Tuple, len(tp))
	copy(out, tp)
	return out
}

// Table stores the tuples of one relation with set semantics over the
// full tuple (inserting a duplicate is a no-op, as relation mentions
// are de-duplicated when populating the KB).
type Table struct {
	schema Schema
	tuples []Tuple
	index  map[string]int // canonical key -> position in tuples
}

// NewTable creates an empty table for the schema.
func NewTable(schema Schema) *Table {
	return &Table{schema: schema, index: map[string]int{}}
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of stored tuples.
func (t *Table) Len() int { return len(t.tuples) }

// key canonicalizes a tuple for set membership.
func (t *Table) key(tp Tuple) string {
	parts := make([]string, len(tp))
	for i, v := range tp {
		parts[i] = fmt.Sprintf("%v", v)
	}
	return strings.Join(parts, "\x00")
}

// typeOK checks a value against a column type.
func typeOK(v any, ct ColType) bool {
	switch ct {
	case StringCol:
		_, ok := v.(string)
		return ok
	case IntCol:
		_, ok := v.(int64)
		if !ok {
			_, ok = v.(int)
		}
		return ok
	case FloatCol:
		_, ok := v.(float64)
		return ok
	}
	return false
}

// Insert adds a tuple, enforcing arity and column types. Duplicate
// tuples are ignored. It reports whether the tuple was newly added.
func (t *Table) Insert(tp Tuple) (bool, error) {
	if len(tp) != t.schema.Arity() {
		return false, fmt.Errorf("kbase: %s: arity %d, got %d values", t.schema.Name, t.schema.Arity(), len(tp))
	}
	norm := make(Tuple, len(tp))
	for i, v := range tp {
		if iv, ok := v.(int); ok {
			v = int64(iv)
		}
		if !typeOK(v, t.schema.Columns[i].Type) {
			return false, fmt.Errorf("kbase: %s.%s: value %v (%T) does not match %s",
				t.schema.Name, t.schema.Columns[i].Name, v, v, t.schema.Columns[i].Type)
		}
		norm[i] = v
	}
	k := t.key(norm)
	if _, dup := t.index[k]; dup {
		return false, nil
	}
	t.index[k] = len(t.tuples)
	t.tuples = append(t.tuples, norm)
	return true, nil
}

// Contains reports whether an identical tuple is stored.
func (t *Table) Contains(tp Tuple) bool {
	if len(tp) != t.schema.Arity() {
		return false
	}
	norm := make(Tuple, len(tp))
	for i, v := range tp {
		if iv, ok := v.(int); ok {
			v = int64(iv)
		}
		norm[i] = v
	}
	_, ok := t.index[t.key(norm)]
	return ok
}

// Delete removes the exact tuple (after int normalization), reporting
// whether it was present. Deletion re-packs the tuple slice, so it is
// O(n). Bulk re-materialization (e.g. a labeling-function edit
// rewriting a Labels column) goes through DeleteWhere, which re-packs
// once for any number of rows.
func (t *Table) Delete(tp Tuple) bool {
	if len(tp) != t.schema.Arity() {
		return false
	}
	norm := make(Tuple, len(tp))
	for i, v := range tp {
		if iv, ok := v.(int); ok {
			v = int64(iv)
		}
		norm[i] = v
	}
	k := t.key(norm)
	pos, ok := t.index[k]
	if !ok {
		return false
	}
	t.tuples = append(t.tuples[:pos], t.tuples[pos+1:]...)
	delete(t.index, k)
	for kk, p := range t.index {
		if p > pos {
			t.index[kk] = p - 1
		}
	}
	return true
}

// DeleteWhere removes every tuple satisfying pred, returning how many
// were deleted. Surviving tuples keep their relative insertion order.
func (t *Table) DeleteWhere(pred func(Tuple) bool) int {
	kept := t.tuples[:0]
	deleted := 0
	for _, tp := range t.tuples {
		if pred(tp) {
			deleted++
			continue
		}
		kept = append(kept, tp)
	}
	if deleted == 0 {
		return 0
	}
	t.tuples = kept
	t.index = make(map[string]int, len(kept))
	for i, tp := range kept {
		t.index[t.key(tp)] = i
	}
	return deleted
}

// Scan calls fn for every tuple in insertion order; fn returning false
// stops the scan. The tuple passed to fn is *borrowed*: it aliases
// table storage for the duration of the callback and must not be
// retained or modified (clone it with Tuple.Clone to keep it). Scan is
// the one deliberately zero-copy read path; Select, Tuples and Page
// return detached clones.
func (t *Table) Scan(fn func(Tuple) bool) {
	for _, tp := range t.tuples {
		if !fn(tp) {
			return
		}
	}
}

// Select returns clones of the tuples satisfying the predicate. The
// result shares no storage with the table: callers (the serving layer
// hands these out to concurrent readers) may hold or modify them
// freely while the table keeps mutating.
func (t *Table) Select(pred func(Tuple) bool) []Tuple {
	var out []Tuple
	for _, tp := range t.tuples {
		if pred(tp) {
			out = append(out, tp.Clone())
		}
	}
	return out
}

// Tuples returns a deep copy of the stored tuples: both the outer
// slice and every tuple are cloned, so the result never aliases table
// storage.
func (t *Table) Tuples() []Tuple {
	out := make([]Tuple, len(t.tuples))
	for i, tp := range t.tuples {
		out[i] = tp.Clone()
	}
	return out
}

// Page returns clones of up to limit tuples starting at offset (in
// insertion order) — the pagination read path of the serving layer. A
// negative or zero limit means "to the end"; offsets past the end
// return nil.
func (t *Table) Page(offset, limit int) []Tuple {
	if offset < 0 {
		offset = 0
	}
	if offset >= len(t.tuples) {
		return nil
	}
	end := len(t.tuples)
	// Compare limit against the remaining window rather than compute
	// offset+limit, which a huge caller-supplied limit would overflow.
	if limit > 0 && limit < end-offset {
		end = offset + limit
	}
	out := make([]Tuple, 0, end-offset)
	for _, tp := range t.tuples[offset:end] {
		out = append(out, tp.Clone())
	}
	return out
}

// DB is a collection of named tables — the knowledge base.
type DB struct {
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB { return &DB{tables: map[string]*Table{}} }

// Create creates a table for the schema. Creating an existing table is
// an error (the pipeline initializes each KB exactly once).
func (db *DB) Create(schema Schema) (*Table, error) {
	if _, exists := db.tables[schema.Name]; exists {
		return nil, fmt.Errorf("kbase: table %s already exists", schema.Name)
	}
	t := NewTable(schema)
	db.tables[schema.Name] = t
	return t, nil
}

// Attach adds an existing table (e.g. one parsed by ReadTSV) to the
// database under its schema name. Attaching over an existing table is
// an error, mirroring Create.
func (db *DB) Attach(t *Table) error {
	name := t.Schema().Name
	if _, exists := db.tables[name]; exists {
		return fmt.Errorf("kbase: table %s already exists", name)
	}
	db.tables[name] = t
	return nil
}

// Table returns the named table, or nil.
func (db *DB) Table(name string) *Table { return db.tables[name] }

// Names returns the sorted table names.
func (db *DB) Names() []string {
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Compare summarizes how table got relates to an existing reference
// table ref with an identical schema, the comparison Table 3 of the
// paper performs against expert-curated knowledge bases:
//
//	Coverage  = |got ∩ ref| / |ref|   (how much of the existing KB we found)
//	NewEntries = |got \ ref|           (entries we found beyond the KB)
type Comparison struct {
	RefEntries int
	GotEntries int
	Overlap    int
	NewEntries int
	Coverage   float64
}

// Compare computes the Table 3 comparison between got and ref.
func Compare(got, ref *Table) Comparison {
	c := Comparison{RefEntries: ref.Len(), GotEntries: got.Len()}
	got.Scan(func(tp Tuple) bool {
		if ref.Contains(tp) {
			c.Overlap++
		} else {
			c.NewEntries++
		}
		return true
	})
	if ref.Len() > 0 {
		c.Coverage = float64(c.Overlap) / float64(ref.Len())
	}
	return c
}
