package kbase

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustSchema(t *testing.T, name string, cols ...string) Schema {
	t.Helper()
	s, err := NewSchema(name, cols...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchema(t *testing.T) {
	s := mustSchema(t, "HasCollectorCurrent", "part", "current:varchar", "max_ma:float", "page:int")
	if s.Arity() != 4 {
		t.Fatalf("arity = %d", s.Arity())
	}
	if s.Columns[0].Type != StringCol || s.Columns[2].Type != FloatCol || s.Columns[3].Type != IntCol {
		t.Fatalf("types = %+v", s.Columns)
	}
	if s.ColIndex("current") != 1 || s.ColIndex("nope") != -1 {
		t.Fatal("ColIndex")
	}
	sql := s.SQL()
	if !strings.Contains(sql, "CREATE TABLE HasCollectorCurrent") || !strings.Contains(sql, "part varchar") {
		t.Fatalf("SQL = %s", sql)
	}
}

func TestNewSchemaErrors(t *testing.T) {
	cases := [][]string{
		nil,         // no columns
		{"a:bogus"}, // unknown type
		{"a", "a"},  // duplicate
		{""},        // empty name
	}
	for _, cols := range cases {
		if _, err := NewSchema("r", cols...); err == nil {
			t.Errorf("NewSchema(r, %v) should error", cols)
		}
	}
	if _, err := NewSchema("", "a"); err == nil {
		t.Error("empty relation name should error")
	}
}

func TestInsertAndDuplicates(t *testing.T) {
	tbl := NewTable(mustSchema(t, "r", "part", "current"))
	added, err := tbl.Insert(Tuple{"SMBT3904", "200mA"})
	if err != nil || !added {
		t.Fatalf("first insert: %v %v", added, err)
	}
	added, err = tbl.Insert(Tuple{"SMBT3904", "200mA"})
	if err != nil || added {
		t.Fatalf("duplicate insert: %v %v", added, err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("len = %d", tbl.Len())
	}
	if !tbl.Contains(Tuple{"SMBT3904", "200mA"}) {
		t.Fatal("Contains")
	}
	if tbl.Contains(Tuple{"SMBT3904"}) {
		t.Fatal("arity mismatch Contains must be false")
	}
}

func TestInsertTypeChecking(t *testing.T) {
	tbl := NewTable(mustSchema(t, "r", "name", "count:int", "score:float"))
	if _, err := tbl.Insert(Tuple{"a", 1, 0.5}); err != nil {
		t.Fatalf("int should coerce to int64: %v", err)
	}
	if _, err := tbl.Insert(Tuple{"a", int64(2), 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(Tuple{"a", "x", 0.5}); err == nil {
		t.Fatal("string into int column should error")
	}
	if _, err := tbl.Insert(Tuple{"a", 1}); err == nil {
		t.Fatal("arity error expected")
	}
	if _, err := tbl.Insert(Tuple{"a", 1, 1}); err == nil {
		t.Fatal("int into float column should error")
	}
}

func TestScanSelect(t *testing.T) {
	tbl := NewTable(mustSchema(t, "r", "part", "current"))
	parts := []string{"A", "B", "C"}
	for _, p := range parts {
		if _, err := tbl.Insert(Tuple{p, "200"}); err != nil {
			t.Fatal(err)
		}
	}
	var seen []string
	tbl.Scan(func(tp Tuple) bool {
		seen = append(seen, tp[0].(string))
		return len(seen) < 2
	})
	if len(seen) != 2 {
		t.Fatalf("early-stop scan saw %v", seen)
	}
	sel := tbl.Select(func(tp Tuple) bool { return tp[0].(string) != "B" })
	if len(sel) != 2 {
		t.Fatalf("select = %v", sel)
	}
	cp := tbl.Tuples()
	cp[0] = Tuple{"X", "Y"}
	if tbl.Tuples()[0][0] != "A" {
		t.Fatal("Tuples must copy")
	}
}

// TestReadPathsDetached is the aliasing regression test: tuples handed
// out by Tuples, Select and Page must not alias table storage, so a
// reader mutating its copy (or holding it across table mutations) can
// never corrupt the relation. Scan remains the documented zero-copy
// borrow; Tuple.Clone detaches a borrowed row.
func TestReadPathsDetached(t *testing.T) {
	tbl := NewTable(mustSchema(t, "r", "part", "current:integer"))
	for i, p := range []string{"A", "B", "C"} {
		if _, err := tbl.Insert(Tuple{p, i}); err != nil {
			t.Fatal(err)
		}
	}
	check := func(name string, rows []Tuple) {
		t.Helper()
		for _, tp := range rows {
			tp[0] = "corrupted"
			tp[1] = int64(999)
		}
		want := []string{"A", "B", "C"}
		for i, tp := range tbl.Tuples() {
			if tp[0] != want[i] || tp[1] != int64(i) {
				t.Fatalf("%s aliased table storage: row %d = %v", name, i, tp)
			}
		}
		if !tbl.Contains(Tuple{"A", 0}) {
			t.Fatalf("%s corrupted the table index", name)
		}
	}
	check("Tuples", tbl.Tuples())
	check("Select", tbl.Select(func(Tuple) bool { return true }))
	check("Page", tbl.Page(0, 3))

	// Scan borrows; Clone detaches the borrow.
	var held Tuple
	tbl.Scan(func(tp Tuple) bool {
		held = tp.Clone()
		return false
	})
	held[0] = "mine"
	if tbl.Tuples()[0][0] != "A" {
		t.Fatal("Tuple.Clone must detach from table storage")
	}

	// Page bounds.
	if got := tbl.Page(1, 1); len(got) != 1 || got[0][0] != "B" {
		t.Fatalf("Page(1,1) = %v", got)
	}
	if got := tbl.Page(2, 0); len(got) != 1 || got[0][0] != "C" {
		t.Fatalf("Page(2,0) = %v", got)
	}
	if got := tbl.Page(5, 2); got != nil {
		t.Fatalf("Page past end = %v", got)
	}
	if got := tbl.Page(-3, 2); len(got) != 2 || got[0][0] != "A" {
		t.Fatalf("Page(-3,2) = %v", got)
	}
	// A huge limit must not overflow offset+limit into a negative
	// bound (clients control both parameters on the serving layer).
	if got := tbl.Page(1, math.MaxInt); len(got) != 2 || got[0][0] != "B" {
		t.Fatalf("Page(1,MaxInt) = %v", got)
	}
}

func TestDB(t *testing.T) {
	db := NewDB()
	s := mustSchema(t, "r1", "a")
	if _, err := db.Create(s); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Create(s); err == nil {
		t.Fatal("duplicate create should error")
	}
	if db.Table("r1") == nil || db.Table("nope") != nil {
		t.Fatal("Table lookup")
	}
	s2 := mustSchema(t, "a2", "x")
	if _, err := db.Create(s2); err != nil {
		t.Fatal(err)
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "a2" || names[1] != "r1" {
		t.Fatalf("Names = %v", names)
	}
}

func TestCompare(t *testing.T) {
	s := mustSchema(t, "r", "part", "current")
	ref := NewTable(s)
	got := NewTable(s)
	for _, p := range []string{"A", "B", "C", "D"} {
		if _, err := ref.Insert(Tuple{p, "1"}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []string{"B", "C", "E"} {
		if _, err := got.Insert(Tuple{p, "1"}); err != nil {
			t.Fatal(err)
		}
	}
	c := Compare(got, ref)
	if c.RefEntries != 4 || c.GotEntries != 3 || c.Overlap != 2 || c.NewEntries != 1 {
		t.Fatalf("comparison = %+v", c)
	}
	if c.Coverage != 0.5 {
		t.Fatalf("coverage = %v", c.Coverage)
	}
	empty := NewTable(s)
	c = Compare(got, empty)
	if c.Coverage != 0 {
		t.Fatalf("empty-ref coverage = %v", c.Coverage)
	}
}

// Property: inserting any set of tuples yields Len equal to the number
// of distinct tuples, and Contains holds for each.
func TestInsertSetSemanticsProperty(t *testing.T) {
	s := mustSchema(t, "r", "a", "b")
	f := func(pairs [][2]string) bool {
		tbl := NewTable(s)
		distinct := map[[2]string]bool{}
		for _, p := range pairs {
			if _, err := tbl.Insert(Tuple{p[0], p[1]}); err != nil {
				return false
			}
			distinct[p] = true
		}
		if tbl.Len() != len(distinct) {
			return false
		}
		for p := range distinct {
			if !tbl.Contains(Tuple{p[0], p[1]}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestColTypeString(t *testing.T) {
	if StringCol.String() != "varchar" || IntCol.String() != "integer" || FloatCol.String() != "float" {
		t.Fatal("type names")
	}
	if ColType(9).String() != "coltype(9)" {
		t.Fatal("unknown type name")
	}
}
