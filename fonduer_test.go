package fonduer_test

import (
	"strings"
	"testing"

	fonduer "repro"
)

const sheetHTML = `<html><body>
<h1 class="part-header">SMBT3904 ... MMBT3904</h1>
<p>NPN Silicon Switching Transistors.</p>
<table><caption>Maximum Ratings</caption>
<tr><th>Parameter</th><th>Symbol</th><th>Value</th><th>Unit</th></tr>
<tr><td>Collector current</td><td>IC</td><td>200</td><td>mA</td></tr>
<tr><td>Junction temperature</td><td>Tj</td><td>150</td><td>C</td></tr>
</table></body></html>`

func figure1Task(t *testing.T) fonduer.Task {
	t.Helper()
	return fonduer.Task{
		Relation: "HasCollectorCurrent",
		Schema:   fonduer.MustSchema("HasCollectorCurrent", "part", "current"),
		Args: []fonduer.ArgSpec{
			{TypeName: "Part", Matcher: fonduer.RegexMatcher(`[SM]MBT[0-9]{4}`)},
			{TypeName: "Current", Matcher: fonduer.NumberRange(100, 995)},
		},
		Throttlers: []fonduer.Throttler{func(c *fonduer.Candidate) bool {
			return fonduer.Contains(fonduer.ColHeaderNgrams(c.Mentions[1].Span), "value")
		}},
		LFs: []fonduer.LabelingFunction{
			{Name: "current_row", Fn: func(c *fonduer.Candidate) int {
				if fonduer.Contains(fonduer.RowNgrams(c.Mentions[1].Span), "current") {
					return 1
				}
				return 0
			}},
			{Name: "temp_row", Fn: func(c *fonduer.Candidate) int {
				if fonduer.Contains(fonduer.RowNgrams(c.Mentions[1].Span), "temperature") {
					return -1
				}
				return 0
			}},
		},
	}
}

func TestPublicAPIQuickstart(t *testing.T) {
	// Parse the Figure 1 datasheet through the public API.
	doc := fonduer.ParseHTML("smbt3904", sheetHTML)
	if len(doc.Tables()) != 1 {
		t.Fatalf("tables = %d", len(doc.Tables()))
	}
	task := figure1Task(t)
	docs := []*fonduer.Document{doc}
	gold := []fonduer.GoldTuple{
		{Doc: "smbt3904", Values: []string{"smbt3904", "200"}},
		{Doc: "smbt3904", Values: []string{"mmbt3904", "200"}},
	}
	res := fonduer.Run(task, docs, docs, gold, fonduer.Options{Epochs: 10, Seed: 1, MinFeatureCount: 1})
	if res.Quality.F1 < 0.99 {
		t.Fatalf("quickstart F1 = %v (%+v)", res.Quality.F1, res.Quality)
	}
	// Write the KB and inspect it.
	kb := fonduer.NewKB()
	tbl, err := fonduer.WriteKB(kb, task, res.Predicted)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("KB entries = %d, want 2", tbl.Len())
	}
	if !strings.Contains(task.Schema.SQL(), "CREATE TABLE HasCollectorCurrent") {
		t.Fatal("schema SQL")
	}
}

func TestPublicAPICorpora(t *testing.T) {
	for name, gen := range map[string]func(int64, int) *fonduer.Corpus{
		"electronics": fonduer.ElectronicsCorpus,
		"ads":         fonduer.AdsCorpus,
		"paleo":       fonduer.PaleoCorpus,
		"genomics":    fonduer.GenomicsCorpus,
	} {
		c := gen(1, 3)
		if len(c.Docs) != 3 || len(c.Tasks) == 0 {
			t.Errorf("%s corpus: %d docs, %d tasks", name, len(c.Docs), len(c.Tasks))
		}
	}
}

func TestPublicAPIVDocAlignment(t *testing.T) {
	c := fonduer.ElectronicsCorpus(2, 1)
	src := c.Sources[0]
	doc := fonduer.ParseHTML("elec0000", src["html"])
	frac, err := fonduer.AlignVDoc(doc, src["vdoc"])
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.9 {
		t.Fatalf("aligned fraction = %v", frac)
	}
	if doc.Pages < 1 {
		t.Fatal("pages not set")
	}
}

func TestPublicAPIParseXML(t *testing.T) {
	doc, err := fonduer.ParseXML("x", `<article><sec><p>rs7329174 and asthma</p></sec></article>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Sentences()) == 0 {
		t.Fatal("no sentences")
	}
	if _, err := fonduer.ParseXML("bad", `<a><b></a>`); err == nil {
		t.Fatal("malformed XML must error")
	}
}

func TestPublicAPIMatcherCombinators(t *testing.T) {
	doc := fonduer.ParseHTML("m", `<p>alpha 42 beta</p>`)
	s := doc.Sentences()[0]
	span := fonduer.Span{Sentence: s, Start: 1, End: 2} // "42"
	u := fonduer.Union(fonduer.NumberRange(0, 100), fonduer.DictionaryMatcher("g", "alpha"))
	if !u.Match(span) {
		t.Fatal("union")
	}
	x := fonduer.Intersect(fonduer.NumberRange(0, 100), fonduer.MatcherFunc("even", func(sp fonduer.Span) bool {
		return sp.Start%2 == 1
	}))
	if !x.Match(span) {
		t.Fatal("intersect")
	}
	if _, err := fonduer.NewSchema("r"); err == nil {
		t.Fatal("NewSchema with no columns must error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustSchema must panic on error")
			}
		}()
		fonduer.MustSchema("r")
	}()
}

func TestPublicAPIKBPersistence(t *testing.T) {
	task := figure1Task(t)
	kb := fonduer.NewKB()
	pred := []fonduer.GoldTuple{
		{Doc: "smbt3904", Values: []string{"smbt3904", "200"}},
		{Doc: "bc337", Values: []string{"bc337", "800"}},
	}
	tbl, err := fonduer.WriteKB(kb, task, pred)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := fonduer.ReadKBTable(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tbl.Len() {
		t.Fatalf("round trip: %d entries, want %d", got.Len(), tbl.Len())
	}
	if !got.Contains(fonduer.Tuple{"smbt3904", "200"}) {
		t.Fatal("round trip lost a tuple")
	}
	if _, err := fonduer.ReadKBTable(strings.NewReader("garbage")); err == nil {
		t.Fatal("malformed TSV must error")
	}
}
